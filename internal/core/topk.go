package core

// Top-k TNN: return the k pairs with the smallest transitive distances.
// The estimate phase generalizes Double-NN: run a k-nearest-neighbor
// search from p on each channel in parallel, pair the i-th neighbors, and
// use d = max_i [dis(p,s_i) + dis(s_i,r_i)] as the radius. The k paired
// routes are realizable and distinct, so the true k-th best distance is at
// most d; every object of every top-k pair then lies within d of p by the
// triangle inequality, and the circle(p,d) range queries cover the join.

import (
	"math"
	"sort"

	"tnnbcast/internal/broadcast"
	"tnnbcast/internal/client"
	"tnnbcast/internal/geom"
	"tnnbcast/internal/heapx"
	"tnnbcast/internal/rtree"
)

// knnSearch is a backtrack-free k-nearest-neighbor search over the
// broadcast image of an R-tree: like nnSearch but the pruning bound is the
// k-th best actual point distance seen so far (point-backed only — the
// face property guarantees one point per node, not k, so MinMaxDist cannot
// bound a k-NN). It implements client.Process.
type knnSearch struct {
	rx       *client.Receiver
	q        geom.Point
	k        int
	queue    client.ArrivalQueue
	dists    []float64 // sorted distances of the best ≤ k points seen
	entries  []rtree.Entry
	started  bool
	finished bool

	// Loss recovery, mirroring nnSearch.
	faults    int
	maxFaults int
	err       *broadcast.ChannelError
}

func newKNNSearch(rx *client.Receiver, q geom.Point, k, maxFaults int) *knnSearch {
	s := &knnSearch{rx: rx, q: q, k: k, maxFaults: maxFaults}
	if rx.Channel().Index().Tree().Count == 0 || k <= 0 {
		s.finished = true
	}
	return s
}

// fault mirrors nnSearch.fault.
func (s *knnSearch) fault(pf *broadcast.PageFault) {
	s.faults++
	if s.faults >= s.maxFaults {
		s.err = &broadcast.ChannelError{Attempts: s.faults, Last: pf}
		s.finished = true
	}
}

// bound returns the current pruning bound: the k-th best point distance,
// or +Inf while fewer than k points have been seen.
func (s *knnSearch) bound() float64 {
	if len(s.dists) < s.k {
		return math.Inf(1)
	}
	return s.dists[s.k-1]
}

// Peek implements client.Process.
func (s *knnSearch) Peek() (int64, bool) {
	if s.finished {
		return 0, true
	}
	if !s.started {
		return s.rx.NextRootArrival(), false
	}
	if s.queue.Len() == 0 {
		s.finished = true
		return 0, true
	}
	return s.queue.Peek().Arrival, false
}

// Step implements client.Process, with the same recovery protocol as
// nnSearch.Step: faulted root → stay unstarted, faulted candidate →
// re-file at its next broadcast.
func (s *knnSearch) Step() {
	var node *rtree.Node
	if !s.started {
		root, pf := s.rx.DownloadNode(s.rx.NextRootArrival())
		if pf != nil {
			s.fault(pf)
			return
		}
		s.started = true
		node = root
	} else {
		c := s.queue.Pop()
		if c.Node.MBR.MinDist(s.q) > s.bound() {
			if s.queue.Len() == 0 {
				s.finished = true
			}
			return
		}
		n, pf := s.rx.DownloadNode(c.Arrival)
		if pf != nil {
			s.queue.Push(client.Candidate{Node: c.Node, Arrival: s.rx.NextNodeArrival(c.Node.ID)})
			s.fault(pf)
			return
		}
		node = n
	}
	s.faults = 0
	if node.Leaf() {
		for _, e := range node.Entries {
			s.offer(e)
		}
	} else {
		for _, ch := range node.Children {
			s.queue.Push(client.Candidate{Node: ch, Arrival: s.rx.NextNodeArrival(ch.ID)})
		}
	}
	if s.queue.Len() == 0 {
		s.finished = true
	}
}

// offer inserts a point into the running top-k.
func (s *knnSearch) offer(e rtree.Entry) {
	d := geom.Dist(s.q, e.Point)
	i := sort.SearchFloat64s(s.dists, d)
	if i >= s.k {
		return
	}
	s.dists = append(s.dists, 0)
	copy(s.dists[i+1:], s.dists[i:])
	s.dists[i] = d
	s.entries = append(s.entries, rtree.Entry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
	if len(s.dists) > s.k {
		s.dists = s.dists[:s.k]
		s.entries = s.entries[:s.k]
	}
}

// results returns the ≤ k nearest entries in ascending distance order.
func (s *knnSearch) results() []rtree.Entry { return s.entries }

// pairHeap is a concrete max-heap of pairs by distance (so the worst of
// the best k sits on top), driven by heapx.
type pairHeap []Pair

func pairLess(a, b Pair) bool { return a.Dist > b.Dist }

func (h *pairHeap) push(p Pair) { heapx.Push((*[]Pair)(h), p, pairLess) }

// fixTop restores the heap property after the root was replaced in place —
// the concrete equivalent of container/heap.Fix(h, 0).
func (h pairHeap) fixTop() { heapx.Down(h, 0, len(h), pairLess) }

// TopKResult reports a top-k TNN query.
type TopKResult struct {
	// Pairs are the k best (s, r) pairs in ascending transitive-distance
	// order (fewer if the datasets are smaller than k).
	Pairs   []Pair
	Found   bool
	Metrics client.Metrics
	Radius  float64
	// Err is non-nil when a channel died mid-query (see Result.Err).
	Err error
}

// TopKTNN answers the top-k transitive nearest-neighbor query with the
// parallel (Double-NN) strategy. The final data retrieval downloads only
// the best pair's attributes (the usual interactive pattern: the list is
// shown, one result is opened).
func TopKTNN(env Env, p geom.Point, k int, opt Options) TopKResult {
	if k <= 0 {
		return TopKResult{}
	}
	opt.Scratch.reset()
	rxS := opt.Scratch.receiver(env.ChS, opt.Issue)
	rxR := opt.Scratch.receiver(env.ChR, opt.Issue)
	opt.applyTrace(rxS, rxR)

	ks := newKNNSearch(rxS, p, k, opt.maxRetries())
	kr := newKNNSearch(rxR, p, k, opt.maxRetries())
	client.RunParallel(ks, kr)
	if cerr := channelErr(ks.err, kr.err); cerr != nil {
		return TopKResult{Metrics: client.Collect(rxS, rxR), Err: cerr}
	}
	ss, rs := ks.results(), kr.results()
	if len(ss) == 0 || len(rs) == 0 {
		return TopKResult{Metrics: client.Collect(rxS, rxR)}
	}

	// Pair i-th with i-th (padding with the last when sizes differ); the
	// max of these realizable routes bounds the k-th best distance.
	d := 0.0
	n := len(ss)
	if len(rs) > n {
		n = len(rs)
	}
	for i := 0; i < n; i++ {
		s := ss[min(i, len(ss)-1)]
		r := rs[min(i, len(rs)-1)]
		if t := geom.TransDist(p, s.Point, r.Point); t > d {
			d = t
		}
	}

	t := rxS.Now()
	if rxR.Now() > t {
		t = rxR.Now()
	}
	rxS.WaitUntil(t)
	rxR.WaitUntil(t)
	w := geom.Circle{Center: p, R: d}
	qs := opt.Scratch.rangeSearch(rxS, w, opt.maxRetries())
	qr := opt.Scratch.rangeSearch(rxR, w, opt.maxRetries())
	client.RunParallel(qs, qr)
	if cerr := channelErr(qs.err, qr.err); cerr != nil {
		return TopKResult{Metrics: client.Collect(rxS, rxR), Err: cerr}
	}

	// k-bounded join: keep the k best pairs in a max-heap.
	var h pairHeap
	kth := math.Inf(1)
	for _, si := range qs.found {
		dps := geom.Dist(p, si.Point)
		if dps >= kth {
			continue
		}
		for _, rj := range qr.found {
			// Chebyshev screen once the heap is full, as in join():
			// hypot never rounds below its larger leg and rounding is
			// monotone, so pairs this bound already excludes are exactly
			// the pairs the full distance would exclude.
			if len(h) == k {
				m := max(math.Abs(si.Point.X-rj.Point.X), math.Abs(si.Point.Y-rj.Point.Y))
				if dps+m >= kth {
					continue
				}
			}
			t := dps + geom.Dist(si.Point, rj.Point)
			if len(h) < k {
				h.push(Pair{S: si, R: rj, Dist: t})
				if len(h) == k {
					kth = h[0].Dist
				}
			} else if t < kth {
				h[0] = Pair{S: si, R: rj, Dist: t}
				h.fixTop()
				kth = h[0].Dist
			}
		}
	}
	pairs := make([]Pair, len(h))
	copy(pairs, h)
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Dist < pairs[j].Dist })
	if len(pairs) == 0 {
		return TopKResult{Metrics: client.Collect(rxS, rxR)}
	}

	var err error
	if !opt.SkipDataRetrieval {
		t = rxS.Now()
		if rxR.Now() > t {
			t = rxR.Now()
		}
		rxS.WaitUntil(t)
		rxR.WaitUntil(t)
		if _, cerr := rxS.DownloadObjectReliable(pairs[0].S.ID, opt.maxRetries()); cerr != nil {
			cerr.Channel = "S"
			err = cerr
		} else if _, cerr := rxR.DownloadObjectReliable(pairs[0].R.ID, opt.maxRetries()); cerr != nil {
			cerr.Channel = "R"
			err = cerr
		}
	}

	return TopKResult{
		Pairs:   pairs,
		Found:   true,
		Metrics: client.Collect(rxS, rxR),
		Radius:  d,
		Err:     err,
	}
}

// channelErr tags and returns the first escalation of an (S, R) search
// pair, S before R for determinism, or nil when both channels are alive.
func channelErr(sErr, rErr *broadcast.ChannelError) error {
	if sErr != nil {
		sErr.Channel = "S"
		return sErr
	}
	if rErr != nil {
		rErr.Channel = "R"
		return rErr
	}
	return nil
}

// OracleTopK computes the exact top-k pairs by exhaustive join (tests
// only).
func OracleTopK(p geom.Point, treeS, treeR *rtree.Tree, k int) []Pair {
	var ss, rs []rtree.Entry
	treeS.Preorder(func(n *rtree.Node) { ss = append(ss, n.Entries...) })
	treeR.Preorder(func(n *rtree.Node) { rs = append(rs, n.Entries...) })
	var all []Pair
	for _, s := range ss {
		for _, r := range rs {
			all = append(all, Pair{S: s, R: r, Dist: geom.TransDist(p, s.Point, r.Point)})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Dist < all[j].Dist })
	if len(all) > k {
		all = all[:k]
	}
	return all
}
