package core

import (
	"errors"
	"math/rand"
	"testing"

	"tnnbcast/internal/broadcast"
	"tnnbcast/internal/geom"
	"tnnbcast/internal/rtree"
)

// lossEnvPair builds a clean environment and a lossy twin over the SAME
// broadcast programs and phases, mirroring how the public API wires
// FaultFeeds: dedicated channels get per-channel derived seeds; a
// multiplexed DualChannel wraps both dataset feeds with one physical-
// channel seed (a slot dies once, for whichever dataset's page it
// carried).
func lossEnvPair(t *testing.T, ptsS, ptsR []geom.Point, spec broadcast.IndexSpec,
	dual bool, offS, offR int64, fm broadcast.FaultModel) (clean, lossy Env) {
	t.Helper()
	p := broadcast.DefaultParams()
	cfg := rtree.Config{LeafCap: p.LeafCap(), NodeCap: p.NodeCap()}
	idxS := broadcast.BuildIndex(rtree.Build(ptsS, cfg), p, spec)
	idxR := broadcast.BuildIndex(rtree.Build(ptsR, cfg), p, spec)
	if dual {
		dc1 := broadcast.NewDualChannel(idxS, idxR, offS)
		dc2 := broadcast.NewDualChannel(idxS, idxR, offS)
		phys := fm.WithSeed(broadcast.DeriveFaultSeed(fm.Seed, 0))
		clean = Env{ChS: dc1.FeedS(), ChR: dc1.FeedR(), Region: testRegion}
		lossy = Env{
			ChS:    broadcast.NewFaultFeed(dc2.FeedS(), phys),
			ChR:    broadcast.NewFaultFeed(dc2.FeedR(), phys),
			Region: testRegion,
		}
		return clean, lossy
	}
	chS, chR := broadcast.NewChannel(idxS, offS), broadcast.NewChannel(idxR, offR)
	clean = Env{ChS: chS, ChR: chR, Region: testRegion}
	lossy = Env{
		ChS:    broadcast.NewFaultFeed(chS, fm.WithSeed(broadcast.DeriveFaultSeed(fm.Seed, 0))),
		ChR:    broadcast.NewFaultFeed(chR, fm.WithSeed(broadcast.DeriveFaultSeed(fm.Seed, 1))),
		Region: testRegion,
	}
	return clean, lossy
}

// lossFaultLadder is the differential suite's fault grid: the paper
// ladder's i.i.d. points, a bursty variant, a corruption-only point, and
// a mixed one.
var lossFaultLadder = []struct {
	name string
	m    broadcast.FaultModel
}{
	{"p=0.001", broadcast.FaultModel{Loss: 0.001, Seed: 21}},
	{"p=0.01", broadcast.FaultModel{Loss: 0.01, Seed: 21}},
	{"p=0.05", broadcast.FaultModel{Loss: 0.05, Seed: 21}},
	{"p=0.01 burst=8", broadcast.FaultModel{Loss: 0.01, Burst: 8, Seed: 21}},
	{"corrupt=0.02", broadcast.FaultModel{Corrupt: 0.02, Seed: 21}},
	{"p=0.02 corrupt=0.02", broadcast.FaultModel{Loss: 0.02, Corrupt: 0.02, Seed: 21}},
}

// TestLossDifferential is the acceptance suite for the recovery protocol:
// for all four algorithms, on both index families and on a multiplexed
// DualChannel, at every fault point the answer is bit-identical to the
// lossless run — loss only spends time (access) and energy (tune-in).
func TestLossDifferential(t *testing.T) {
	algos := []struct {
		name string
		run  func(Env, geom.Point, Options) Result
	}{
		{"Window-Based", WindowBased},
		{"Double-NN", DoubleNN},
		{"Hybrid-NN", HybridNN},
		{"Approximate-TNN", ApproximateTNN},
	}
	layouts := []struct {
		name string
		spec broadcast.IndexSpec
		dual bool
	}{
		{"preorder", broadcast.IndexSpec{}, false},
		{"distributed", broadcast.IndexSpec{Scheme: broadcast.SchemeDistributed}, false},
		{"dualchannel", broadcast.IndexSpec{}, true},
	}

	rng := rand.New(rand.NewSource(6))
	ptsS := uniformPts(rng, 500, testRegion)
	ptsR := clusteredPts(rng, 400, 4, testRegion)

	for _, lay := range layouts {
		t.Run(lay.name, func(t *testing.T) {
			for _, fp := range lossFaultLadder {
				t.Run(fp.name, func(t *testing.T) {
					clean, lossy := lossEnvPair(t, ptsS, ptsR, lay.spec, lay.dual, 13, 377, fp.m)
					qrng := rand.New(rand.NewSource(99))
					var totalLost, sumAccessClean, sumAccessLossy, sumTuneClean, sumTuneLossy int64
					for q := 0; q < 12; q++ {
						p := geom.Pt(qrng.Float64()*1000, qrng.Float64()*1000)
						opt := Options{Issue: qrng.Int63n(50000)}
						for _, a := range algos {
							want := a.run(clean, p, opt)
							got := a.run(lossy, p, opt)
							if got.Err != nil {
								t.Fatalf("%s q=%d: escalated at %s: %v", a.name, q, fp.name, got.Err)
							}
							if got.Found != want.Found ||
								got.Pair.S.ID != want.Pair.S.ID ||
								got.Pair.R.ID != want.Pair.R.ID ||
								got.Pair.Dist != want.Pair.Dist {
								t.Fatalf("%s q=%d: answer changed under %s:\n  lossy %+v\n  clean %+v",
									a.name, q, fp.name, got.Pair, want.Pair)
							}
							if want.Metrics.Lost != 0 || want.Metrics.Retries != 0 || want.Metrics.RecoverySlots != 0 {
								t.Fatalf("%s q=%d: clean run reported loss accounting: %+v",
									a.name, q, want.Metrics)
							}
							// A query that saw no faults executed the clean
							// schedule slot for slot.
							if got.Metrics.Lost == 0 && got.Metrics != want.Metrics {
								t.Fatalf("%s q=%d: zero faults but metrics diverge:\n  lossy %+v\n  clean %+v",
									a.name, q, got.Metrics, want.Metrics)
							}
							// A faulted query pays in access time. (Tune-in is
							// only monotone in aggregate: the delay a fault
							// imposes can tighten a pruning bound and save a
							// page or two on an individual query.)
							if got.Metrics.AccessTime < want.Metrics.AccessTime {
								t.Fatalf("%s q=%d: lossy access %d < clean %d",
									a.name, q, got.Metrics.AccessTime, want.Metrics.AccessTime)
							}
							if got.Metrics.Lost < got.Metrics.Retries {
								t.Fatalf("%s q=%d: retries %d exceed faults %d",
									a.name, q, got.Metrics.Retries, got.Metrics.Lost)
							}
							totalLost += got.Metrics.Lost
							sumAccessClean += want.Metrics.AccessTime
							sumAccessLossy += got.Metrics.AccessTime
							sumTuneClean += want.Metrics.TuneIn
							sumTuneLossy += got.Metrics.TuneIn
						}
					}
					if totalLost == 0 && (fp.m.Loss >= 0.01 || fp.m.Corrupt > 0) {
						t.Fatalf("%s never faulted — the point tests nothing", fp.name)
					}
					if sumAccessLossy < sumAccessClean || sumTuneLossy < sumTuneClean {
						t.Fatalf("%s: aggregate cost shrank under loss: access %d -> %d, tune-in %d -> %d",
							fp.name, sumAccessClean, sumAccessLossy, sumTuneClean, sumTuneLossy)
					}
				})
			}
		})
	}
}

// TestLossDeterministicMetrics: the same query on the same lossy
// environment reports bit-identical metrics — faults are a pure function
// of (seed, slot), so resilience does not cost reproducibility.
func TestLossDeterministicMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ptsS := uniformPts(rng, 300, testRegion)
	ptsR := uniformPts(rng, 300, testRegion)
	_, lossy := lossEnvPair(t, ptsS, ptsR, broadcast.IndexSpec{}, false, 5, 9,
		broadcast.FaultModel{Loss: 0.03, Burst: 4, Seed: 31})

	p := geom.Pt(321, 654)
	opt := Options{Issue: 1234}
	for _, run := range []func(Env, geom.Point, Options) Result{
		WindowBased, DoubleNN, HybridNN, ApproximateTNN,
	} {
		a := run(lossy, p, opt)
		b := run(lossy, p, opt)
		if a.Metrics != b.Metrics || a.Pair != b.Pair || a.Found != b.Found {
			t.Fatalf("repeat run diverged:\n  %+v\n  %+v", a, b)
		}
	}
}

// TestLossTraceFault: the TraceFault callback fires exactly once per
// faulted reception — Metrics.Lost and the event stream agree, and every
// reported channel tag is valid.
func TestLossTraceFault(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ptsS := uniformPts(rng, 300, testRegion)
	ptsR := uniformPts(rng, 300, testRegion)
	_, lossy := lossEnvPair(t, ptsS, ptsR, broadcast.IndexSpec{}, false, 0, 0,
		broadcast.FaultModel{Loss: 0.05, Seed: 77})

	var events int64
	opt := Options{
		Issue: 10,
		TraceFault: func(ch string, slot int64) {
			if ch != "S" && ch != "R" {
				t.Errorf("TraceFault channel tag %q", ch)
			}
			events++
		},
	}
	res := WindowBased(lossy, geom.Pt(500, 500), opt)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if events == 0 {
		t.Fatal("no faults traced at 5% loss")
	}
	if events != res.Metrics.Lost {
		t.Fatalf("TraceFault fired %d times, Metrics.Lost = %d", events, res.Metrics.Lost)
	}
}

// TestLossEscalation: with a retry budget far below what the loss rate
// demands, queries must give up with a typed ChannelError instead of
// spinning forever, and the error must say which channel died.
func TestLossEscalation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ptsS := uniformPts(rng, 200, testRegion)
	ptsR := uniformPts(rng, 200, testRegion)
	_, lossy := lossEnvPair(t, ptsS, ptsR, broadcast.IndexSpec{}, false, 0, 0,
		broadcast.FaultModel{Loss: 0.95, Seed: 3})

	var escalated int
	for q := 0; q < 5; q++ {
		for _, run := range []func(Env, geom.Point, Options) Result{
			WindowBased, DoubleNN, HybridNN, ApproximateTNN,
		} {
			res := run(lossy, geom.Pt(rand.New(rand.NewSource(int64(q))).Float64()*1000, 500),
				Options{Issue: int64(q) * 1000, MaxRetries: 2})
			if res.Err == nil {
				continue
			}
			escalated++
			var ce *broadcast.ChannelError
			if !errors.As(res.Err, &ce) {
				t.Fatalf("escalation error is %T, want *broadcast.ChannelError", res.Err)
			}
			if ce.Channel != "S" && ce.Channel != "R" {
				t.Fatalf("ChannelError.Channel = %q, want S or R", ce.Channel)
			}
			if ce.Attempts < 2 {
				t.Fatalf("ChannelError.Attempts = %d with MaxRetries 2", ce.Attempts)
			}
			var pf *broadcast.PageFault
			if !errors.As(res.Err, &pf) {
				t.Fatal("ChannelError does not unwrap to the last PageFault")
			}
		}
	}
	if escalated == 0 {
		t.Fatal("95% loss with MaxRetries=2 never escalated")
	}
}
