package core

// This file implements the generalized TNN queries the paper lists as
// future work (Section 7):
//
//  1. ChainTNN — more than two datasets, visited in a specified order on
//     k simultaneous channels: minimize dis(p,s1) + dis(s1,s2) + … +
//     dis(s_{k-1},s_k).
//  2. UnorderedTNN — two datasets with the visiting order unspecified:
//     the better of (S then R) and (R then S).
//  3. RoundTripTNN — a complete travel route that returns to the source:
//     minimize dis(p,s) + dis(s,r) + dis(r,p).
//
// All three reuse the estimate–filter paradigm. The correctness argument
// is the natural generalization of Theorem 1: if d is the length of any
// *realizable* route (built from actual data objects), every object o on a
// better route satisfies dis(p,o) ≤ d by the triangle inequality, so the
// circle(p,d) range queries cover all candidates and the local join finds
// the exact optimum.

import (
	"fmt"
	"math"

	"tnnbcast/internal/broadcast"
	"tnnbcast/internal/client"
	"tnnbcast/internal/geom"
	"tnnbcast/internal/rtree"
)

// MultiEnv is a broadcast environment with one channel per dataset, in
// visiting order.
type MultiEnv struct {
	Chs    []broadcast.Feed
	Region geom.Rect
}

// ChainResult reports a ChainTNN query.
type ChainResult struct {
	// Stops are the chosen objects, one per dataset, in visiting order.
	Stops []rtree.Entry
	// Dist is the total route length dis(p,s1) + Σ dis(s_i, s_{i+1}).
	Dist    float64
	Found   bool
	Metrics client.Metrics
	Radius  float64
	// Err is non-nil when a channel died mid-query (see Result.Err);
	// chain channels are tagged "ch0", "ch1", … in visiting order.
	Err error
}

// ChainTNN answers a transitive nearest-neighbor query across k datasets
// in a fixed visiting order, using all k channels simultaneously
// (the Double-NN strategy generalized). The estimate phase runs k parallel
// NN searches from p; chaining their results gives a realizable route
// whose length bounds the search range. The filter phase runs k parallel
// circular range queries and a layered dynamic-programming join.
func ChainTNN(env MultiEnv, p geom.Point, opt Options) ChainResult {
	k := len(env.Chs)
	if k == 0 {
		return ChainResult{}
	}
	opt.Scratch.reset()
	rxs := make([]*client.Receiver, k)
	searches := make([]client.Process, k)
	nns := make([]*nnSearch, k)
	for i, ch := range env.Chs {
		rxs[i] = opt.Scratch.receiver(ch, opt.Issue)
		factor := opt.ANN.FactorS
		if i > 0 {
			factor = opt.ANN.FactorR
		}
		nns[i] = opt.Scratch.nnSearch(rxs[i], p, factor, opt.maxRetries())
		searches[i] = nns[i]
	}
	client.RunParallel(searches...)
	for i := range nns {
		if cerr := nns[i].err; cerr != nil {
			cerr.Channel = fmt.Sprintf("ch%d", i)
			return ChainResult{Metrics: collectAll(rxs), Err: cerr}
		}
	}

	// Chain the parallel NN results into a realizable route.
	route := make([]rtree.Entry, k)
	for i := range nns {
		e, _, ok := nns[i].result()
		if !ok {
			return ChainResult{Metrics: collectAll(rxs)}
		}
		route[i] = e
	}
	d := routeLength(p, route)

	// Filter: parallel range queries with radius d on every channel.
	t := int64(0)
	for _, rx := range rxs {
		if rx.Now() > t {
			t = rx.Now()
		}
	}
	w := geom.Circle{Center: p, R: d}
	ranges := make([]*rangeSearch, k)
	procs := make([]client.Process, k)
	for i, rx := range rxs {
		rx.WaitUntil(t)
		ranges[i] = opt.Scratch.rangeSearch(rx, w, opt.maxRetries())
		procs[i] = ranges[i]
	}
	client.RunParallel(procs...)
	for i := range ranges {
		if cerr := ranges[i].err; cerr != nil {
			cerr.Channel = fmt.Sprintf("ch%d", i)
			return ChainResult{Metrics: collectAll(rxs), Err: cerr}
		}
	}

	// Layered DP join: best[i][j] = min route length from p through layers
	// 0..i ending at candidate j of layer i.
	layers := make([][]rtree.Entry, k)
	for i := range ranges {
		layers[i] = ranges[i].found.entries()
	}
	stops, dist, ok := chainJoin(p, layers, route, d)
	if !ok {
		return ChainResult{Metrics: collectAll(rxs)}
	}

	var err error
	if !opt.SkipDataRetrieval {
		t = 0
		for _, rx := range rxs {
			if rx.Now() > t {
				t = rx.Now()
			}
		}
		for i, rx := range rxs {
			rx.WaitUntil(t)
			if _, cerr := rx.DownloadObjectReliable(stops[i].ID, opt.maxRetries()); cerr != nil {
				cerr.Channel = fmt.Sprintf("ch%d", i)
				err = cerr
				break
			}
		}
	}

	return ChainResult{
		Stops:   stops,
		Dist:    dist,
		Found:   true,
		Metrics: collectAll(rxs),
		Radius:  d,
		Err:     err,
	}
}

// collectAll combines receiver metrics (max access, summed tune-in).
func collectAll(rxs []*client.Receiver) client.Metrics {
	return client.Collect(rxs...)
}

// routeLength returns dis(p, r0) + Σ dis(r_i, r_{i+1}).
func routeLength(p geom.Point, route []rtree.Entry) float64 {
	if len(route) == 0 {
		return 0
	}
	d := geom.Dist(p, route[0].Point)
	for i := 1; i < len(route); i++ {
		d += geom.Dist(route[i-1].Point, route[i].Point)
	}
	return d
}

// chainJoin finds the minimum-length route through the candidate layers by
// dynamic programming, seeded with the incumbent route of length bound.
func chainJoin(p geom.Point, layers [][]rtree.Entry, incumbent []rtree.Entry, bound float64) ([]rtree.Entry, float64, bool) {
	k := len(layers)
	for _, l := range layers {
		if len(l) == 0 {
			// The incumbent is realizable even if a range query came back
			// empty (cannot happen with exact estimates, but keeps the
			// join total).
			return incumbent, bound, len(incumbent) == k
		}
	}
	// cost[j] = best route length from p through layers 0..i ending at
	// layers[i][j]; back[i][j] = predecessor index.
	cost := make([]float64, len(layers[0]))
	back := make([][]int, k)
	for j, e := range layers[0] {
		cost[j] = geom.Dist(p, e.Point)
	}
	for i := 1; i < k; i++ {
		next := make([]float64, len(layers[i]))
		back[i] = make([]int, len(layers[i]))
		for j, e := range layers[i] {
			best := math.Inf(1)
			arg := -1
			for j2, prev := range layers[i-1] {
				if c := cost[j2] + geom.Dist(prev.Point, e.Point); c < best {
					best, arg = c, j2
				}
			}
			next[j], back[i][j] = best, arg
		}
		cost = next
	}
	bestEnd, bestDist := -1, bound
	for j := range layers[k-1] {
		if cost[j] < bestDist {
			bestDist, bestEnd = cost[j], j
		}
	}
	if bestEnd == -1 {
		return incumbent, bound, len(incumbent) == k
	}
	stops := make([]rtree.Entry, k)
	j := bestEnd
	for i := k - 1; i >= 1; i-- {
		stops[i] = layers[i][j]
		j = back[i][j]
	}
	stops[0] = layers[0][j]
	return stops, bestDist, true
}

// UnorderedTNN answers the two-dataset TNN query when the visiting order
// is not specified: it returns the better of visiting S first or R first.
// Both parallel NN results from the estimate phase yield realizable routes
// in either order; the smaller of the two bounds the shared search range,
// and the join evaluates both directions.
//
// The returned First reports true when the S-object is visited first.
func UnorderedTNN(env Env, p geom.Point, opt Options) (Result, bool) {
	opt.Scratch.reset()
	rxS := opt.Scratch.receiver(env.ChS, opt.Issue)
	rxR := opt.Scratch.receiver(env.ChR, opt.Issue)
	opt.applyTrace(rxS, rxR)

	ns := opt.Scratch.nnSearch(rxS, p, opt.ANN.FactorS, opt.maxRetries())
	nr := opt.Scratch.nnSearch(rxR, p, opt.ANN.FactorR, opt.maxRetries())
	client.RunParallel(ns, nr)
	if cerr := channelErr(ns.err, nr.err); cerr != nil {
		return Result{Metrics: client.Collect(rxS, rxR), Err: cerr}, false
	}
	s, _, okS := ns.result()
	r, _, okR := nr.result()
	if !okS || !okR {
		return Result{Metrics: client.Collect(rxS, rxR)}, false
	}

	dSR := geom.TransDist(p, s.Point, r.Point)
	dRS := geom.TransDist(p, r.Point, s.Point)
	d := math.Min(dSR, dRS)

	t := rxS.Now()
	if rxR.Now() > t {
		t = rxR.Now()
	}
	rxS.WaitUntil(t)
	rxR.WaitUntil(t)
	w := geom.Circle{Center: p, R: d}
	qs := opt.Scratch.rangeSearch(rxS, w, opt.maxRetries())
	qr := opt.Scratch.rangeSearch(rxR, w, opt.maxRetries())
	client.RunParallel(qs, qr)
	if cerr := channelErr(qs.err, qr.err); cerr != nil {
		return Result{Metrics: client.Collect(rxS, rxR), Err: cerr}, false
	}

	sFirstIncumbent := Pair{S: s, R: r, Dist: dSR}
	pairSR, _ := join(p, sFirstIncumbent, true, &qs.found, &qr.found)
	rFirstIncumbent := Pair{S: r, R: s, Dist: dRS}
	pairRS, _ := join(p, rFirstIncumbent, true, &qr.found, &qs.found)

	sFirst := pairSR.Dist <= pairRS.Dist
	var res Pair
	if sFirst {
		res = pairSR
	} else {
		// pairRS visits R first: its S field holds the R-object.
		res = Pair{S: pairRS.R, R: pairRS.S, Dist: pairRS.Dist}
	}

	var err error
	if !opt.SkipDataRetrieval {
		t = rxS.Now()
		if rxR.Now() > t {
			t = rxR.Now()
		}
		rxS.WaitUntil(t)
		rxR.WaitUntil(t)
		if _, cerr := rxS.DownloadObjectReliable(res.S.ID, opt.maxRetries()); cerr != nil {
			cerr.Channel = "S"
			err = cerr
		} else if _, cerr := rxR.DownloadObjectReliable(res.R.ID, opt.maxRetries()); cerr != nil {
			cerr.Channel = "R"
			err = cerr
		}
	}

	m := client.Collect(rxS, rxR)
	return Result{
		Pair:    res,
		Found:   true,
		Metrics: m,
		Radius:  d,
		Err:     err,
	}, sFirst
}

// RoundTripTNN answers the complete-route variant: visit one object of S,
// then one of R, then return to the start, minimizing
// dis(p,s) + dis(s,r) + dis(r,p). The parallel NN results give a
// realizable tour whose length bounds the range queries (every object on a
// better tour lies within that distance of p).
func RoundTripTNN(env Env, p geom.Point, opt Options) Result {
	opt.Scratch.reset()
	rxS := opt.Scratch.receiver(env.ChS, opt.Issue)
	rxR := opt.Scratch.receiver(env.ChR, opt.Issue)
	opt.applyTrace(rxS, rxR)

	ns := opt.Scratch.nnSearch(rxS, p, opt.ANN.FactorS, opt.maxRetries())
	nr := opt.Scratch.nnSearch(rxR, p, opt.ANN.FactorR, opt.maxRetries())
	client.RunParallel(ns, nr)
	if cerr := channelErr(ns.err, nr.err); cerr != nil {
		return Result{Metrics: client.Collect(rxS, rxR), Err: cerr}
	}
	s, _, okS := ns.result()
	r, _, okR := nr.result()
	if !okS || !okR {
		return Result{Metrics: client.Collect(rxS, rxR)}
	}

	tour := func(s, r geom.Point) float64 {
		return geom.Dist(p, s) + geom.Dist(s, r) + geom.Dist(r, p)
	}
	d := tour(s.Point, r.Point)

	t := rxS.Now()
	if rxR.Now() > t {
		t = rxR.Now()
	}
	rxS.WaitUntil(t)
	rxR.WaitUntil(t)
	w := geom.Circle{Center: p, R: d}
	qs := opt.Scratch.rangeSearch(rxS, w, opt.maxRetries())
	qr := opt.Scratch.rangeSearch(rxR, w, opt.maxRetries())
	client.RunParallel(qs, qr)
	if cerr := channelErr(qs.err, qr.err); cerr != nil {
		return Result{Metrics: client.Collect(rxS, rxR), Err: cerr}
	}

	best := Pair{S: s, R: r, Dist: d}
	fs, fr := &qs.found, &qr.found
	for i := range fs.x {
		// An object s on a better tour satisfies dis(p,s) < d; tighter:
		// the two legs through s already cost dis(p,s) twice is not valid
		// for asymmetric tours, so only the basic bound applies.
		siP := geom.Point{X: fs.x[i], Y: fs.y[i]}
		if geom.Dist(p, siP) >= best.Dist {
			continue
		}
		for j := range fr.x {
			if td := tour(siP, geom.Point{X: fr.x[j], Y: fr.y[j]}); td < best.Dist {
				best = Pair{S: fs.entry(i), R: fr.entry(j), Dist: td}
			}
		}
	}

	var err error
	if !opt.SkipDataRetrieval {
		t = rxS.Now()
		if rxR.Now() > t {
			t = rxR.Now()
		}
		rxS.WaitUntil(t)
		rxR.WaitUntil(t)
		if _, cerr := rxS.DownloadObjectReliable(best.S.ID, opt.maxRetries()); cerr != nil {
			cerr.Channel = "S"
			err = cerr
		} else if _, cerr := rxR.DownloadObjectReliable(best.R.ID, opt.maxRetries()); cerr != nil {
			cerr.Channel = "R"
			err = cerr
		}
	}

	m := client.Collect(rxS, rxR)
	return Result{
		Pair:    best,
		Found:   true,
		Metrics: m,
		Radius:  d,
		Err:     err,
	}
}

// OracleChainTNN computes the exact chain answer by layered dynamic
// programming over the full datasets (ground truth for tests; exponential
// savings are not needed at test sizes).
func OracleChainTNN(p geom.Point, trees []*rtree.Tree) ([]rtree.Entry, float64, bool) {
	k := len(trees)
	if k == 0 {
		return nil, 0, false
	}
	layers := make([][]rtree.Entry, k)
	for i, t := range trees {
		if t.Count == 0 {
			return nil, 0, false
		}
		var all []rtree.Entry
		t.Preorder(func(n *rtree.Node) { all = append(all, n.Entries...) })
		layers[i] = all
	}
	incumbent := make([]rtree.Entry, 0)
	stops, dist, ok := chainJoin(p, layers, incumbent, math.Inf(1))
	if !ok || len(stops) != k {
		return nil, 0, false
	}
	return stops, dist, true
}

// OracleRoundTrip computes the exact round-trip answer by exhaustive
// search (tests only).
func OracleRoundTrip(p geom.Point, treeS, treeR *rtree.Tree) (Pair, bool) {
	var ss, rs []rtree.Entry
	treeS.Preorder(func(n *rtree.Node) { ss = append(ss, n.Entries...) })
	treeR.Preorder(func(n *rtree.Node) { rs = append(rs, n.Entries...) })
	best := Pair{Dist: math.Inf(1)}
	found := false
	for _, s := range ss {
		for _, r := range rs {
			d := geom.Dist(p, s.Point) + geom.Dist(s.Point, r.Point) + geom.Dist(r.Point, p)
			if d < best.Dist {
				best = Pair{S: s, R: r, Dist: d}
				found = true
			}
		}
	}
	return best, found
}
