package core

import (
	"math"
	"math/rand"
	"testing"

	"tnnbcast/internal/broadcast"
	"tnnbcast/internal/client"
	"tnnbcast/internal/geom"
	"tnnbcast/internal/rtree"
)

// testEnv bundles an environment with the in-memory trees for oracle use.
type testEnv struct {
	env          Env
	treeS, treeR *rtree.Tree
	ptsS, ptsR   []geom.Point
}

func uniformPts(rng *rand.Rand, n int, region geom.Rect) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(
			region.Lo.X+rng.Float64()*region.Width(),
			region.Lo.Y+rng.Float64()*region.Height(),
		)
	}
	return pts
}

func clusteredPts(rng *rand.Rand, n, clusters int, region geom.Rect) []geom.Point {
	centers := uniformPts(rng, clusters, region)
	sigma := region.Width() / 40
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		c := centers[rng.Intn(clusters)]
		p := geom.Pt(c.X+rng.NormFloat64()*sigma, c.Y+rng.NormFloat64()*sigma)
		if region.Contains(p) {
			pts = append(pts, p)
		}
	}
	return pts
}

func makeEnv(t *testing.T, ptsS, ptsR []geom.Point, region geom.Rect, offS, offR int64) testEnv {
	t.Helper()
	p := broadcast.DefaultParams()
	cfg := rtree.Config{LeafCap: p.LeafCap(), NodeCap: p.NodeCap()}
	treeS := rtree.Build(ptsS, cfg)
	treeR := rtree.Build(ptsR, cfg)
	return testEnv{
		env: Env{
			ChS:    broadcast.NewChannel(broadcast.BuildProgram(treeS, p), offS),
			ChR:    broadcast.NewChannel(broadcast.BuildProgram(treeR, p), offR),
			Region: region,
		},
		treeS: treeS, treeR: treeR, ptsS: ptsS, ptsR: ptsR,
	}
}

var testRegion = geom.RectOf(geom.Pt(0, 0), geom.Pt(1000, 1000))

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestOracleAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		ptsS := uniformPts(rng, 40+rng.Intn(100), testRegion)
		ptsR := clusteredPts(rng, 30+rng.Intn(100), 4, testRegion)
		te := makeEnv(t, ptsS, ptsR, testRegion, 0, 0)
		for j := 0; j < 10; j++ {
			p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			got, ok := OracleTNN(p, te.treeS, te.treeR)
			_, _, want, ok2 := BruteTNN(p, ptsS, ptsR)
			if !ok || !ok2 {
				t.Fatal("oracle/brute failed on non-empty data")
			}
			if !almostEq(got.Dist, want, 1e-9) {
				t.Fatalf("oracle %v vs brute %v", got.Dist, want)
			}
		}
	}
}

func TestOracleEmpty(t *testing.T) {
	te := makeEnv(t, nil, []geom.Point{geom.Pt(1, 1)}, testRegion, 0, 0)
	if _, ok := OracleTNN(geom.Pt(0, 0), te.treeS, te.treeR); ok {
		t.Error("oracle on empty S should fail")
	}
	te2 := makeEnv(t, []geom.Point{geom.Pt(1, 1)}, nil, testRegion, 0, 0)
	if _, ok := OracleTNN(geom.Pt(0, 0), te2.treeS, te2.treeR); ok {
		t.Error("oracle on empty R should fail")
	}
}

// The three exact algorithms must always return the true TNN pair,
// regardless of channel phases and dataset shapes.
func TestExactAlgorithmsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	algos := map[string]func(Env, geom.Point, Options) Result{
		"DoubleNN":    DoubleNN,
		"WindowBased": WindowBased,
		"HybridNN":    HybridNN,
	}
	for i := 0; i < 12; i++ {
		var ptsS, ptsR []geom.Point
		if i%2 == 0 {
			ptsS = uniformPts(rng, 100+rng.Intn(400), testRegion)
			ptsR = uniformPts(rng, 100+rng.Intn(400), testRegion)
		} else {
			ptsS = clusteredPts(rng, 100+rng.Intn(300), 5, testRegion)
			ptsR = clusteredPts(rng, 50+rng.Intn(200), 3, testRegion)
		}
		te := makeEnv(t, ptsS, ptsR, testRegion, rng.Int63n(10000), rng.Int63n(10000))
		for j := 0; j < 8; j++ {
			p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			want, _ := OracleTNN(p, te.treeS, te.treeR)
			opt := Options{Issue: rng.Int63n(100000)}
			for name, algo := range algos {
				got := algo(te.env, p, opt)
				if !got.Found {
					t.Fatalf("%s: not found", name)
				}
				if !almostEq(got.Pair.Dist, want.Dist, 1e-9) {
					t.Fatalf("%s: dist %v, oracle %v (i=%d j=%d)", name, got.Pair.Dist, want.Dist, i, j)
				}
			}
		}
	}
}

// The ANN optimization must not change the answer (Section 5: "ANN
// optimization technique does not affect the final answer to the TNN
// query"), for any factor.
func TestANNPreservesAnswer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		ptsS := uniformPts(rng, 200+rng.Intn(300), testRegion)
		ptsR := clusteredPts(rng, 100+rng.Intn(300), 6, testRegion)
		te := makeEnv(t, ptsS, ptsR, testRegion, rng.Int63n(5000), rng.Int63n(5000))
		for j := 0; j < 5; j++ {
			p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			want, _ := OracleTNN(p, te.treeS, te.treeR)
			for _, factor := range []float64{0.1, 0.5, 1.0, 2.0} {
				for name, algo := range map[string]func(Env, geom.Point, Options) Result{
					"DoubleNN": DoubleNN, "WindowBased": WindowBased,
				} {
					got := algo(te.env, p, Options{ANN: UniformANN(factor)})
					if !got.Found || !almostEq(got.Pair.Dist, want.Dist, 1e-9) {
						t.Fatalf("%s ANN factor=%v: dist %v, oracle %v",
							name, factor, got.Pair.Dist, want.Dist)
					}
				}
				got := HybridNN(te.env, p, Options{ANN: UniformANN(factor / 150)})
				if !got.Found || !almostEq(got.Pair.Dist, want.Dist, 1e-9) {
					t.Fatalf("HybridNN ANN: dist %v, oracle %v", got.Pair.Dist, want.Dist)
				}
			}
		}
	}
}

// Per-channel ANN properties: the approximate NN can never be closer than
// the exact NN, an approximate search always returns some point, and in
// aggregate it downloads fewer estimate-phase pages than exact search.
func TestANNSearchTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var exactPages, annPages int64
	looser := 0
	for i := 0; i < 10; i++ {
		ptsS := uniformPts(rng, 600, testRegion)
		te := makeEnv(t, ptsS, ptsS[:1], testRegion, rng.Int63n(5000), 0)
		for j := 0; j < 10; j++ {
			p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)

			rxE := client.NewReceiver(te.env.ChS, 0)
			exact := newNNSearch(rxE, p, 0, 16)
			client.RunSequential(exact)
			_, dE, okE := exact.result()

			rxA := client.NewReceiver(te.env.ChS, 0)
			ann := newNNSearch(rxA, p, 1, 16)
			client.RunSequential(ann)
			_, dA, okA := ann.result()

			if !okE || !okA {
				t.Fatal("search returned no point on non-empty tree")
			}
			if dA < dE-1e-9 {
				t.Fatalf("ANN distance %v below exact %v", dA, dE)
			}
			if dA > dE+1e-9 {
				looser++
			}
			exactPages += rxE.Pages()
			annPages += rxA.Pages()
		}
	}
	if annPages >= exactPages {
		t.Errorf("ANN pages %d not below exact pages %d", annPages, exactPages)
	}
	if looser == 0 {
		t.Error("ANN never loosened the NN distance — approximation seems inert")
	}
}

func TestJoin(t *testing.T) {
	p := geom.Pt(0, 0)
	var ss, rs pointBuf
	ss.add(1, 0, 0)
	ss.add(5, 0, 1)
	rs.add(2, 0, 0)
	rs.add(9, 9, 1)
	got, ok := join(p, Pair{}, false, &ss, &rs)
	if !ok {
		t.Fatal("join found nothing")
	}
	// Best: s=(1,0), r=(2,0): 1+1=2.
	if got.S.ID != 0 || got.R.ID != 0 || !almostEq(got.Dist, 2, 1e-12) {
		t.Fatalf("join = %+v", got)
	}

	// The incumbent survives when no candidate beats it.
	inc := Pair{S: ss.entry(0), R: rs.entry(0), Dist: 1.5} // artificially strong bound
	got, ok = join(p, inc, true, &ss, &rs)
	if !ok || got.Dist != 1.5 {
		t.Fatalf("incumbent should survive: %+v", got)
	}

	// Empty candidate sets without incumbent: not found.
	if _, ok := join(p, Pair{}, false, &pointBuf{}, &pointBuf{}); ok {
		t.Error("empty join should not find a pair")
	}
}

func TestApproxRadius(t *testing.T) {
	// Unit square, n=100, k=1: ln(100)·sqrt(1/(100π)).
	want := math.Log(100) * math.Sqrt(1/(100*math.Pi))
	if got := ApproxRadius(100, 1, 1); !almostEq(got, want, 1e-12) {
		t.Errorf("ApproxRadius = %v, want %v", got, want)
	}
	// Area scaling: a 4× area doubles the radius.
	if got := ApproxRadius(100, 1, 4); !almostEq(got, 2*want, 1e-12) {
		t.Errorf("scaled ApproxRadius = %v, want %v", got, 2*want)
	}
	if got := ApproxRadius(0, 1, 1); got != 0 {
		t.Errorf("n=0 radius = %v", got)
	}
}

func TestApproximateTNNUniformUsuallyCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	correct, total := 0, 0
	for i := 0; i < 5; i++ {
		ptsS := uniformPts(rng, 500, testRegion)
		ptsR := uniformPts(rng, 500, testRegion)
		te := makeEnv(t, ptsS, ptsR, testRegion, rng.Int63n(5000), rng.Int63n(5000))
		for j := 0; j < 20; j++ {
			p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			got := ApproximateTNN(te.env, p, Options{})
			want, _ := OracleTNN(p, te.treeS, te.treeR)
			total++
			if got.Found && almostEq(got.Pair.Dist, want.Dist, 1e-9) {
				correct++
			}
		}
	}
	// The paper reports a 0% fail rate on uniform–uniform data.
	if correct != total {
		t.Errorf("Approximate-TNN failed %d/%d times on uniform data", total-correct, total)
	}
}

func TestMetricsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ptsS := uniformPts(rng, 400, testRegion)
	ptsR := uniformPts(rng, 400, testRegion)
	te := makeEnv(t, ptsS, ptsR, testRegion, 123, 4567)
	for _, algo := range []func(Env, geom.Point, Options) Result{
		DoubleNN, WindowBased, HybridNN, ApproximateTNN,
	} {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		res := algo(te.env, p, Options{Issue: 42})
		if !res.Found {
			t.Fatal("not found")
		}
		if res.Metrics.TuneIn <= 0 || res.Metrics.AccessTime <= 0 {
			t.Fatalf("non-positive metrics: %+v", res.Metrics)
		}
		if res.EstimateTuneIn+res.FilterTuneIn != res.Metrics.TuneIn {
			t.Fatalf("phase split %d+%d != total %d",
				res.EstimateTuneIn, res.FilterTuneIn, res.Metrics.TuneIn)
		}
		if res.Metrics.TuneIn > res.Metrics.AccessTime*2 {
			t.Fatalf("tune-in %d exceeds both channels' access window %d",
				res.Metrics.TuneIn, res.Metrics.AccessTime*2)
		}
		// SkipDataRetrieval strictly reduces both metrics.
		res2 := algo(te.env, p, Options{Issue: 42, SkipDataRetrieval: true})
		ppo := int64(te.env.ChS.Index().PagesPerObject())
		if res2.Metrics.TuneIn != res.Metrics.TuneIn-2*ppo {
			t.Fatalf("skip retrieval: tune-in %d, want %d",
				res2.Metrics.TuneIn, res.Metrics.TuneIn-2*ppo)
		}
		if res2.Metrics.AccessTime > res.Metrics.AccessTime {
			t.Fatalf("skip retrieval increased access time")
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ptsS := uniformPts(rng, 300, testRegion)
	ptsR := clusteredPts(rng, 300, 4, testRegion)
	te := makeEnv(t, ptsS, ptsR, testRegion, 77, 991)
	p := geom.Pt(400, 600)
	for _, algo := range []func(Env, geom.Point, Options) Result{
		DoubleNN, WindowBased, HybridNN, ApproximateTNN,
	} {
		a := algo(te.env, p, Options{Issue: 5})
		b := algo(te.env, p, Options{Issue: 5})
		if a.Metrics != b.Metrics || a.Pair.Dist != b.Pair.Dist || a.Radius != b.Radius {
			t.Fatalf("nondeterministic result: %+v vs %+v", a, b)
		}
	}
}

// Hybrid-NN case selection: a much smaller R finishes first → Case 3; a
// much smaller S finishes first → Case 2.
func TestHybridCaseSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	big := uniformPts(rng, 2000, testRegion)
	small := uniformPts(rng, 60, testRegion)

	case2, case3 := 0, 0
	for j := 0; j < 30; j++ {
		offS, offR := rng.Int63n(30000), rng.Int63n(30000)
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)

		teBigS := makeEnv(t, big, small, testRegion, offS, offR)
		r1 := HybridNN(teBigS.env, p, Options{})
		if r1.Case == Case3 {
			case3++
		}

		teSmallS := makeEnv(t, small, big, testRegion, offS, offR)
		r2 := HybridNN(teSmallS.env, p, Options{})
		if r2.Case == Case2 {
			case2++
		}
	}
	if case3 < 25 {
		t.Errorf("big S / small R: Case3 only %d/30", case3)
	}
	if case2 < 25 {
		t.Errorf("small S / big R: Case2 only %d/30", case2)
	}
}

func TestEmptyDatasets(t *testing.T) {
	te := makeEnv(t, nil, []geom.Point{geom.Pt(1, 1)}, testRegion, 0, 0)
	for _, algo := range []func(Env, geom.Point, Options) Result{
		DoubleNN, WindowBased, HybridNN, ApproximateTNN,
	} {
		res := algo(te.env, geom.Pt(0, 0), Options{})
		if res.Found {
			t.Fatal("found a pair with empty S")
		}
	}
}

func TestDensityAwareANN(t *testing.T) {
	cfg := DensityAwareANN(100, 100, 1)
	if cfg.FactorS != 1 || cfg.FactorR != 1 {
		t.Errorf("equal sizes: %+v", cfg)
	}
	cfg = DensityAwareANN(1000, 100, 1)
	if cfg.FactorS != 1 || cfg.FactorR != 0 {
		t.Errorf("dense S: %+v", cfg)
	}
	cfg = DensityAwareANN(100, 1000, 1)
	if cfg.FactorS != 0 || cfg.FactorR != 1 {
		t.Errorf("dense R: %+v", cfg)
	}
}
