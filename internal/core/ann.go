package core

// This file holds the approximate-NN (ANN) configuration policies of
// Sections 5.2 and 6.2. The pruning mechanics themselves (Heuristics 1 and
// 2, the dynamic threshold of Eq. 4) live in the search process
// (process.go); what remains policy is how the adjustment factor is
// assigned to the two channels.

// FactorWindowDouble is the calibrated adjustment factor for Window-Based
// and Double-NN ANN search. The paper reports factor = 1 for its
// implementation (Section 6.2.1); the absolute value is implementation-
// specific — it depends on how the upper bound that drives the overlap
// heuristics evolves during the traversal, which the paper does not pin
// down precisely. This implementation backs the heuristic circle with the
// sound (face-property) bound, under which factor ≈ 0.15 is the operating
// point that reproduces the paper's reported 11–20% net tune-in
// improvement; at factor = 1 the leaf-level threshold α approaches 1 and
// pruning degrades the NN so badly that the filter-phase penalty dwarfs
// the estimate-phase savings (the failure mode Section 5.1 itself warns
// about as α → 1).
const FactorWindowDouble = 0.15

// FactorHybrid is the calibrated factor for Hybrid-NN's ANN search. The
// paper uses 1/150–1/200 of its Window/Double factor because the
// transitive search's pruning ellipse shrinks much faster than the NN
// circle, so Hybrid tolerates far less approximation; the same two orders
// of magnitude below FactorWindowDouble apply here.
const FactorHybrid = FactorWindowDouble / 150

// UniformANN enables the same factor on both channels — the configuration
// for equal-size datasets (Fig. 12(a)).
func UniformANN(factor float64) ANNConfig {
	return ANNConfig{FactorS: factor, FactorR: factor}
}

// DensityAwareANN implements Section 5.2's density rule: when the two
// datasets cover the same region with different cardinalities, run exact
// search (α = 0) on the sparser dataset and approximate search on the
// denser one. A larger search range costs little extra tune-in on a sparse
// dataset but a lot on a dense one, so approximation should only be spent
// where the estimate phase is expensive and the filter penalty small.
func DensityAwareANN(sizeS, sizeR int, factor float64) ANNConfig {
	switch {
	case sizeS == sizeR:
		return UniformANN(factor)
	case sizeS > sizeR:
		return ANNConfig{FactorS: factor, FactorR: 0}
	default:
		return ANNConfig{FactorS: 0, FactorR: factor}
	}
}
