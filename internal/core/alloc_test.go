package core

import (
	"math/rand"
	"testing"

	"tnnbcast/internal/geom"
)

// Steady-state allocation guards for the query hot path. With a Scratch
// the per-query cost must stay at a small constant: the candidate queues,
// seen/found buffers, receivers, and search structs are all reused, and the
// pruning heuristics (queue-min scan, circle/ellipse overlap) are
// allocation-free. A regression here means boxing or copying crept back
// into nnSearch/rangeSearch.
func TestQuerySteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	ptsS := uniformPts(rng, 1500, testRegion)
	ptsR := uniformPts(rng, 1500, testRegion)
	te := makeEnv(t, ptsS, ptsR, testRegion, 7919, 104729)
	qs := uniformPts(rng, 32, testRegion)

	// The per-query allocation budget. Zero in the common case; a small
	// slack absorbs rare buffer growth when a later query point needs a
	// deeper traversal than any before it.
	const budget = 4.0

	cases := []struct {
		name string
		run  func(Env, geom.Point, Options) Result
		ann  ANNConfig
	}{
		{"DoubleNN", DoubleNN, ANNConfig{}},
		{"WindowBased", WindowBased, ANNConfig{}},
		{"HybridNN", HybridNN, ANNConfig{}},
		{"ApproximateTNN", ApproximateTNN, ANNConfig{}},
		{"DoubleNN/ANN", DoubleNN, UniformANN(FactorWindowDouble)},
		{"HybridNN/ANN", HybridNN, UniformANN(FactorHybrid)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := NewScratch()
			opt := Options{ANN: c.ann, Scratch: sc}
			// Warm the scratch buffers over the whole query set so
			// AllocsPerRun measures the steady state, not first-touch
			// growth.
			for _, q := range qs {
				c.run(te.env, q, opt)
			}
			i := 0
			allocs := testing.AllocsPerRun(64, func() {
				c.run(te.env, qs[i%len(qs)], opt)
				i++
			})
			if allocs > budget {
				t.Errorf("%s: %.1f allocs per steady-state query, budget %.0f",
					c.name, allocs, budget)
			}
		})
	}
}

// Without a scratch the algorithms still work (Scratch is optional), and
// the per-query footprint stays bounded — this pins the nil-scratch path.
func TestQueryNilScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	ptsS := uniformPts(rng, 400, testRegion)
	ptsR := uniformPts(rng, 400, testRegion)
	te := makeEnv(t, ptsS, ptsR, testRegion, 11, 13)
	q := geom.Pt(500, 500)

	withSc := NewScratch()
	a := DoubleNN(te.env, q, Options{Scratch: withSc})
	b := DoubleNN(te.env, q, Options{})
	if a.Metrics != b.Metrics || a.Pair.Dist != b.Pair.Dist || a.Found != b.Found {
		t.Fatalf("scratch changed the answer: %+v vs %+v", a, b)
	}
}
