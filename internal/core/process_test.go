package core

import (
	"math/rand"
	"sort"
	"testing"

	"tnnbcast/internal/broadcast"
	"tnnbcast/internal/client"
	"tnnbcast/internal/geom"
)

// Process-level tests: the broadcast search primitives against their
// in-memory oracles, across random channel phases.

func TestBroadcastNNMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		pts := uniformPts(rng, 200+rng.Intn(600), testRegion)
		te := makeEnv(t, pts, pts[:1], testRegion, rng.Int63n(50000), 0)
		for j := 0; j < 20; j++ {
			q := geom.Pt(rng.Float64()*1200-100, rng.Float64()*1200-100)
			rx := client.NewReceiver(te.env.ChS, rng.Int63n(100000))
			s := newNNSearch(rx, q, 0, 16)
			client.RunSequential(s)
			got, gotD, ok := s.result()
			if !ok {
				t.Fatal("broadcast NN found nothing")
			}
			want, _, _ := te.treeS.NN(q)
			if !almostEq(gotD, geom.Dist(q, want.Point), 1e-9) {
				t.Fatalf("broadcast NN %v (d=%v), in-memory %v (d=%v)",
					got.Point, gotD, want.Point, geom.Dist(q, want.Point))
			}
		}
	}
}

func TestBroadcastTransSearchMatchesInMemory(t *testing.T) {
	// A search switched to the transitive metric before consuming anything
	// must find the same optimum as the in-memory transitive NN.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		pts := clusteredPts(rng, 200+rng.Intn(400), 5, testRegion)
		te := makeEnv(t, pts, pts[:1], testRegion, rng.Int63n(50000), 0)
		for j := 0; j < 15; j++ {
			p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			r := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			rx := client.NewReceiver(te.env.ChS, rng.Int63n(100000))
			s := newNNSearch(rx, p, 0, 16)
			s.switchTransitive(r)
			client.RunSequential(s)
			got, gotD, ok := s.result()
			if !ok {
				t.Fatal("transitive search found nothing")
			}
			want, _ := te.treeS.TransNN(p, r)
			wantD := geom.TransDist(p, want.Point, r)
			if !almostEq(gotD, wantD, 1e-9) {
				t.Fatalf("broadcast trans %v (d=%v), in-memory %v (d=%v)",
					got.Point, gotD, want.Point, wantD)
			}
		}
	}
}

func TestBroadcastRangeMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 8; trial++ {
		pts := uniformPts(rng, 300+rng.Intn(400), testRegion)
		te := makeEnv(t, pts, pts[:1], testRegion, rng.Int63n(50000), 0)
		for j := 0; j < 15; j++ {
			c := geom.Circle{
				Center: geom.Pt(rng.Float64()*1000, rng.Float64()*1000),
				R:      rng.Float64() * 300,
			}
			rx := client.NewReceiver(te.env.ChS, rng.Int63n(100000))
			s := newRangeSearch(rx, c, 16)
			client.RunSequential(s)
			want := te.treeS.RangeCircle(c)
			if s.found.Len() != len(want) {
				t.Fatalf("range found %d, want %d", s.found.Len(), len(want))
			}
			gotIDs := make([]int, s.found.Len())
			for i, e := range s.found.entries() {
				gotIDs[i] = e.ID
			}
			wantIDs := make([]int, len(want))
			for i, e := range want {
				wantIDs[i] = e.ID
			}
			sort.Ints(gotIDs)
			sort.Ints(wantIDs)
			for i := range wantIDs {
				if gotIDs[i] != wantIDs[i] {
					t.Fatal("range result sets differ")
				}
			}
		}
	}
}

// The retarget path (Hybrid Case 2): a search redirected mid-flight must
// still return a valid object of its dataset, and the result must be at
// least as good as any already-seen point under the new metric.
func TestRetargetMidFlight(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		pts := uniformPts(rng, 500, testRegion)
		te := makeEnv(t, pts, pts[:1], testRegion, rng.Int63n(50000), 0)
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		newQ := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)

		rx := client.NewReceiver(te.env.ChS, rng.Int63n(100000))
		s := newNNSearch(rx, p, 0, 16)
		// Run a few steps, then retarget.
		steps := rng.Intn(10)
		for i := 0; i < steps; i++ {
			if _, done := s.Peek(); done {
				break
			}
			s.Step()
		}
		s.retarget(newQ)
		client.RunSequential(s)
		got, gotD, ok := s.result()
		if !ok {
			t.Fatal("retargeted search found nothing")
		}
		if !almostEq(gotD, geom.Dist(newQ, got.Point), 1e-12) {
			t.Fatal("result distance not under the new metric")
		}
		// The result is the minimum over everything seen.
		for _, e := range s.seen.entries() {
			if geom.Dist(newQ, e.Point) < gotD-1e-9 {
				t.Fatal("a seen point beats the reported result")
			}
		}
	}
}

// Delayed pruning bounds the queue size by roughly (height-1)*(fanout-1)
// live unvisited candidates plus the current node's children (the paper's
// Section 4.2.4 memory argument).
func TestQueueSizeBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	pts := uniformPts(rng, 3000, testRegion)
	te := makeEnv(t, pts, pts[:1], testRegion, 0, 0)
	tree := te.treeS
	bound := (tree.Height + 1) * tree.NodeCap * 4 // generous structural bound
	for j := 0; j < 20; j++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		rx := client.NewReceiver(te.env.ChS, rng.Int63n(100000))
		s := newNNSearch(rx, q, 0, 16)
		maxQ := 0
		for {
			if _, done := s.Peek(); done {
				break
			}
			s.Step()
			if s.queue.Len() > maxQ {
				maxQ = s.queue.Len()
			}
		}
		if maxQ > bound {
			t.Fatalf("queue grew to %d, structural bound %d", maxQ, bound)
		}
	}
}

func TestAlphaMonotoneInDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	pts := uniformPts(rng, 500, testRegion)
	te := makeEnv(t, pts, pts[:1], testRegion, 0, 0)
	rx := client.NewReceiver(te.env.ChS, 0)
	s := newNNSearch(rx, geom.Pt(0, 0), 0.5, 16)
	prev := -1.0
	for d := 0; d < te.treeS.Height; d++ {
		a := s.alpha(d)
		if a <= prev {
			t.Fatalf("alpha not strictly increasing: depth %d -> %v after %v", d, a, prev)
		}
		prev = a
	}
	// Leaves reach exactly the factor.
	if leaf := s.alpha(te.treeS.Height - 1); !almostEq(leaf, 0.5, 1e-12) {
		t.Errorf("leaf alpha = %v, want 0.5", leaf)
	}
}

func TestOverlapRatioDegenerateMBR(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pts := uniformPts(rng, 100, testRegion)
	te := makeEnv(t, pts, pts[:1], testRegion, 0, 0)
	rx := client.NewReceiver(te.env.ChS, 0)
	s := newNNSearch(rx, geom.Pt(0, 0), 1, 16)
	s.ub = 10
	// Zero-area (degenerate) MBR must be kept, not divided by zero.
	deg := geom.Rect{Lo: geom.Pt(5, 5), Hi: geom.Pt(5, 9)}
	if got := s.overlapRatio(deg); got != 1 {
		t.Errorf("degenerate ratio = %v, want 1", got)
	}
}

// Metrics sanity under the scheduler: per-channel access time equals the
// last download slot + 1 - issue, and the tune-in counts every download.
func TestReceiverMetricsThroughSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	pts := uniformPts(rng, 400, testRegion)
	te := makeEnv(t, pts, pts[:1], testRegion, 1234, 0)
	q := geom.Pt(500, 500)
	issue := int64(777)
	rx := client.NewReceiver(te.env.ChS, issue)
	downloads := int64(0)
	rx.SetTrace(func(int64, broadcast.Page) { downloads++ })
	s := newNNSearch(rx, q, 0, 16)
	client.RunSequential(s)
	if rx.Pages() == 0 {
		t.Fatal("no pages downloaded")
	}
	if downloads != rx.Pages() {
		t.Fatalf("trace saw %d downloads, receiver counted %d", downloads, rx.Pages())
	}
	if rx.AccessTime() <= 0 || rx.AccessTime() > rx.Now()-issue {
		t.Fatalf("access time %d inconsistent with clock %d", rx.AccessTime(), rx.Now())
	}
	if rx.Pages() > rx.AccessTime() {
		t.Fatalf("downloaded %d pages in %d slots", rx.Pages(), rx.AccessTime())
	}
}
