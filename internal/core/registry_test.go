package core

import (
	"math/rand"
	"strings"
	"testing"

	"tnnbcast/internal/geom"
)

// TestRegistryBuiltins pins the invariant the whole public API leans on:
// the built-in ids, names, and aliases resolve to the registered specs,
// and Run through the registry matches the algorithm functions bit for
// bit.
func TestRegistryBuiltins(t *testing.T) {
	byAlias := map[string]Algo{
		"window": AlgoWindow, "double": AlgoDouble, "hybrid": AlgoHybrid, "approx": AlgoApprox,
	}
	for alias, want := range byAlias {
		if a, ok := AlgoByName(alias); !ok || a != want {
			t.Fatalf("AlgoByName(%q) = %v, %v", alias, a, ok)
		}
		if a, ok := AlgoByName(strings.ToUpper(want.String())); !ok || a != want {
			t.Fatalf("AlgoByName(%q) = %v, %v", want.String(), a, ok)
		}
		spec, ok := Lookup(want)
		if !ok || spec.Name != want.String() {
			t.Fatalf("Lookup(%v) = %+v, %v", want, spec, ok)
		}
	}
	if _, ok := Lookup(Algo(-1)); ok {
		t.Fatal("Lookup(-1) succeeded")
	}
	if _, ok := AlgoByName("no such thing"); ok {
		t.Fatal("AlgoByName on garbage succeeded")
	}

	rng := rand.New(rand.NewSource(5))
	te := makeEnv(t, uniformPts(rng, 900, testRegion), uniformPts(rng, 900, testRegion),
		testRegion, 17, 23)
	p := geom.Pt(640, 410)
	direct := []func(Env, geom.Point, Options) Result{WindowBased, DoubleNN, HybridNN, ApproximateTNN}
	for a, fn := range direct {
		want := fn(te.env, p, Options{})
		got, ok := Run(te.env, Algo(a), p, Options{})
		if !ok || got != want {
			t.Fatalf("Run(%v) = %+v, %v; want %+v", Algo(a), got, ok, want)
		}
		ex, ok := NewExec(te.env, Algo(a), p, Options{})
		if !ok {
			t.Fatalf("NewExec(%v) failed", Algo(a))
		}
		for !ex.Done() {
			ex.Step()
		}
		if ex.Result() != want {
			t.Fatalf("NewExec(%v) result differs", Algo(a))
		}
	}
	if _, ok := Run(te.env, Algo(4096), p, Options{}); ok {
		t.Fatal("Run accepted an unregistered algorithm")
	}
}

// TestRegisterValidation checks duplicate and malformed registrations.
func TestRegisterValidation(t *testing.T) {
	if _, err := Register(AlgoSpec{Name: "", New: builtinFactory(AlgoDouble)}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := Register(AlgoSpec{Name: "nameless-factory"}); err == nil {
		t.Fatal("nil factory accepted")
	}
	if _, err := Register(AlgoSpec{Name: "DOUBLE-nn", New: builtinFactory(AlgoDouble)}); err == nil {
		t.Fatal("case-colliding duplicate name accepted")
	}
	if _, err := Register(AlgoSpec{Name: "fresh-name", Alias: "Window", New: builtinFactory(AlgoDouble)}); err == nil {
		t.Fatal("alias colliding with a built-in alias accepted")
	}

	id, err := Register(AlgoSpec{Name: "registry-test-ok", Alias: "rtok", New: builtinFactory(AlgoHybrid)})
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := AlgoByName("rtok"); !ok || a != id {
		t.Fatalf("alias lookup = %v, %v; want %v", a, ok, id)
	}
	if id.String() != "registry-test-ok" {
		t.Fatalf("String() = %q", id.String())
	}
}
