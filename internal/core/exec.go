package core

// This file makes one TNN query a RESUMABLE process. The four algorithm
// functions in algorithms.go used to drive their searches to completion in
// one call, which welds a query to its own private event loop — fine for a
// single client, useless for a session where thousands of clients share
// one broadcast timeline and must interleave at slot granularity.
// QueryExec is the same estimate–filter execution unrolled into an
// explicit state machine: Peek reports the next slot at which the query
// wants to act, Step performs exactly one action. A query driven by the
// trivial peek/step loop performs the identical sequence of receiver
// operations as the old monolithic functions — the golden metrics prove it
// bit-for-bit — and a query driven by a multi-client scheduler interleaves
// with other clients without changing its own trajectory, because clients
// share only the immutable broadcast programs.

import (
	"fmt"

	"tnnbcast/internal/broadcast"
	"tnnbcast/internal/client"
	"tnnbcast/internal/geom"
)

// Algo identifies one of the paper's four TNN algorithms. It mirrors the
// public tnnbcast.Algorithm values so the session layer can carry the
// choice without importing the root package.
type Algo int

const (
	// AlgoWindow is the adapted Window-Based-TNN-Search baseline.
	AlgoWindow Algo = iota
	// AlgoDouble is the Double-NN-Search algorithm.
	AlgoDouble
	// AlgoHybrid is the Hybrid-NN-Search algorithm.
	AlgoHybrid
	// AlgoApprox is the Approximate-TNN-Search baseline.
	AlgoApprox
)

// Builtin reports whether a is one of the four built-in paper algorithms —
// the ones whose executions are plain QueryExec state machines that a
// session can pool and Reset in place. Registered strategies go through
// their own factories instead.
func (a Algo) Builtin() bool { return a >= AlgoWindow && a <= AlgoApprox }

func (a Algo) String() string {
	switch a {
	case AlgoWindow:
		return "Window-Based"
	case AlgoDouble:
		return "Double-NN"
	case AlgoHybrid:
		return "Hybrid-NN"
	case AlgoApprox:
		return "Approximate-TNN"
	default:
		if spec, ok := Lookup(a); ok {
			return spec.Name
		}
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// Phase is the coarse, externally observable position of a query
// execution, the granularity of the paper's estimate/filter tune-in
// split. The Window variant's two sequential NN searches both count as
// the estimate phase; the terminal join and answer retrieval count as the
// filter phase (their data pages are filter tune-in).
type Phase int

const (
	// PhaseEstimate covers the NN searches that determine the search
	// radius. Approximate-TNN skips it entirely.
	PhaseEstimate Phase = iota
	// PhaseFilter covers the circular range queries, the local join, and
	// the answer-object retrieval.
	PhaseFilter
	// PhaseDone means the Result is final.
	PhaseDone
)

func (p Phase) String() string {
	switch p {
	case PhaseEstimate:
		return "estimate"
	case PhaseFilter:
		return "filter"
	default:
		return "done"
	}
}

// execPhase is the coarse position of a query execution.
type execPhase int

const (
	// phWinS: Window-Based, first NN search (p.NN(S)) running alone.
	phWinS execPhase = iota
	// phWinR: Window-Based, second NN search (s.NN(R)) running alone.
	phWinR
	// phEstimate: Double/Hybrid, both NN searches running in parallel.
	phEstimate
	// phFilter: the two circular range queries running in parallel.
	phFilter
	// phJoin: ranges done; the local join and the optional answer-object
	// retrieval are the one remaining action.
	phJoin
	// phDone: the Result is final.
	phDone
)

// QueryExec is one TNN query as a stepwise process. It implements
// client.Process, so a single query can be driven by RunParallel and a
// whole session of queries by client.Sched. Obtain one with Reset; when
// Peek reports done, Result holds the outcome.
//
// A QueryExec holds its Options.Scratch for the lifetime of the query, so
// concurrently live executions (a session) need one Scratch each — unlike
// sequential queries, which can recycle a single scratch.
type QueryExec struct {
	env  Env
	p    geom.Point
	algo Algo
	opt  Options

	rxS, rxR *client.Receiver
	ns, nr   *nnSearch
	qs, qr   *rangeSearch

	phase   execPhase
	caseTag HybridCase

	radius    float64
	incumbent Pair
	haveInc   bool
	estimate  int64 // estimate-phase tune-in, captured at filter start

	res Result
}

// Reset (re)initializes the execution in place for a new query, exactly as
// the corresponding algorithm function would start it: scratch reclaimed,
// receivers issued, estimate-phase searches created. The previous
// execution's state is discarded.
func (ex *QueryExec) Reset(env Env, algo Algo, p geom.Point, opt Options) {
	opt.Scratch.reset()
	*ex = QueryExec{env: env, p: p, algo: algo, opt: opt}
	ex.rxS = opt.Scratch.receiver(env.ChS, opt.Issue)
	ex.rxR = opt.Scratch.receiver(env.ChR, opt.Issue)
	opt.applyTrace(ex.rxS, ex.rxR)
	switch algo {
	case AlgoWindow:
		ex.ns = opt.Scratch.nnSearch(ex.rxS, p, opt.ANN.FactorS, opt.maxRetries())
		ex.phase = phWinS
	case AlgoHybrid, AlgoDouble:
		ex.ns = opt.Scratch.nnSearch(ex.rxS, p, opt.ANN.FactorS, opt.maxRetries())
		ex.nr = opt.Scratch.nnSearch(ex.rxR, p, opt.ANN.FactorR, opt.maxRetries())
		ex.phase = phEstimate
	case AlgoApprox:
		// No estimate phase: the radius comes from Eq. 1 directly.
		area := env.Region.Area()
		nS := env.ChS.Index().Tree().Count
		nR := env.ChR.Index().Tree().Count
		ex.radius = ApproxRadius(nS, 1, area) + ApproxRadius(nR, 1, area)
		ex.startFilter()
	default:
		panic("core: unknown algorithm")
	}
	ex.advance()
}

// Done reports whether the execution has produced its final Result.
func (ex *QueryExec) Done() bool { return ex.phase == phDone }

// Scratch returns the scratch space the execution holds (nil when it runs
// without one). The session engine uses this to return a finished client's
// scratch to its pool the moment the client completes.
func (ex *QueryExec) Scratch() *Scratch { return ex.opt.Scratch }

// Result returns the query outcome; valid once Done.
func (ex *QueryExec) Result() Result { return ex.res }

// Phase reports the coarse execution phase, for streaming observers.
func (ex *QueryExec) Phase() Phase {
	switch ex.phase {
	case phWinS, phWinR, phEstimate:
		return PhaseEstimate
	case phFilter, phJoin:
		return PhaseFilter
	default:
		return PhaseDone
	}
}

// Radius returns the search-range radius once the estimate phase has
// determined it (ok reports availability; Approximate-TNN has it from the
// start).
func (ex *QueryExec) Radius() (r float64, ok bool) {
	if ex.Phase() == PhaseEstimate {
		return 0, false
	}
	return ex.radius, true
}

// Now returns the later of the two receivers' local clocks — the slot at
// which client-local transitions (phase sync, join) conceptually happen.
//
//tnn:noalloc
func (ex *QueryExec) Now() int64 { return ex.clockMax() }

// clockMax returns the later of the two receivers' local clocks — the slot
// at which client-local work (phase sync, join) conceptually happens.
//
//tnn:noalloc
func (ex *QueryExec) clockMax() int64 {
	t := ex.rxS.Now()
	if ex.rxR.Now() > t {
		t = ex.rxR.Now()
	}
	return t
}

// Peek implements client.Process: the next slot at which this query acts.
// advance() guarantees the current phase has runnable work (or is phDone),
// so Peek never reports a stale sub-process slot.
//
//tnn:noalloc
func (ex *QueryExec) Peek() (int64, bool) {
	switch ex.phase {
	case phWinS:
		slot, _ := ex.ns.Peek()
		return slot, false
	case phWinR:
		slot, _ := ex.nr.Peek()
		return slot, false
	case phEstimate:
		return earliestNN(ex.ns, ex.nr), false
	case phFilter:
		return earliestRange(ex.qs, ex.qr), false
	case phJoin:
		return ex.clockMax(), false
	default:
		return 0, true
	}
}

// earliestNN returns the smaller next-action slot of two NN searches, at
// least one of which is not done (advance's invariant). Equal slots resolve
// to the S-channel process, which is always passed first — the same
// channel-order tie-break StepEarliest applies. Monomorphic on purpose: a
// generic version shares one gcshape instantiation for all pointer types
// and calls Peek through its dictionary, while these concrete calls inline
// to plain field reads.
//
//tnn:noalloc
func earliestNN(a, b *nnSearch) int64 {
	sa, da := a.Peek()
	sb, db := b.Peek()
	switch {
	case da:
		return sb
	case db:
		return sa
	case sb < sa:
		return sb
	default:
		return sa
	}
}

// earliestRange is earliestNN for the two filter-phase range searches.
//
//tnn:noalloc
func earliestRange(a, b *rangeSearch) int64 {
	sa, da := a.Peek()
	sb, db := b.Peek()
	switch {
	case da:
		return sb
	case db:
		return sa
	case sb < sa:
		return sb
	default:
		return sa
	}
}

// Step implements client.Process: perform exactly one action — download or
// prune one candidate during the searches, or the terminal join+retrieval
// — then fold any completed sub-phase into the next one.
//
//tnn:noalloc
func (ex *QueryExec) Step() {
	switch ex.phase {
	case phWinS:
		ex.ns.Step()
	case phWinR:
		ex.nr.Step()
	case phEstimate:
		if ex.algo == AlgoHybrid {
			// Redirect exactly once, at the moment one search finishes
			// while the other still runs (Hybrid-NN Cases 2 and 3).
			ex.hybridRedirect()
		}
		stepEarlierNN(ex.ns, ex.nr)
	case phFilter:
		stepEarlierRange(ex.qs, ex.qr)
	case phJoin:
		ex.joinAndRetrieve()
	case phDone:
		panic("core: Step on a finished query execution")
	}
	ex.advance()
}

// stepEarlierNN is client.StepEarliest specialized to the two estimate-
// phase NN searches of one query — identical semantics (smallest slot
// steps, equal slots resolve to a, the S-channel process, passed first),
// without the variadic scan. Monomorphic for the same reason as
// earliestNN: the cached Peeks inline to field reads.
//
//tnn:noalloc
func stepEarlierNN(a, b *nnSearch) {
	sa, da := a.Peek()
	sb, db := b.Peek()
	switch {
	case da && db:
	case db || (!da && sa <= sb):
		a.Step()
	default:
		b.Step()
	}
}

// stepEarlierRange is stepEarlierNN for the two filter-phase range
// searches.
//
//tnn:noalloc
func stepEarlierRange(a, b *rangeSearch) {
	sa, da := a.Peek()
	sb, db := b.Peek()
	switch {
	case da && db:
	case db || (!da && sa <= sb):
		a.Step()
	default:
		b.Step()
	}
}

// hybridRedirect applies the one-time Hybrid-NN redirect when exactly one
// of the two searches has finished with a result.
func (ex *QueryExec) hybridRedirect() {
	if ex.caseTag != CaseNone {
		return
	}
	_, sDone := ex.ns.Peek()
	_, rDone := ex.nr.Peek()
	if sDone && !rDone {
		if s, _, ok := ex.ns.result(); ok {
			ex.nr.retarget(s.Point)
			ex.caseTag = Case2
		}
	} else if rDone && !sDone {
		if r, _, ok := ex.nr.result(); ok {
			ex.ns.switchTransitive(r.Point)
			ex.caseTag = Case3
		}
	}
}

// advance folds completed sub-phases into their successors until the
// execution either has a runnable next action or is done. It performs only
// client-local work (result checks, phase synchronization, search
// creation) — never a download — so it is safe to run eagerly after Reset
// and after every Step. The loop re-evaluates because a transition can
// complete instantly (an empty dataset finishes its searches at creation).
func (ex *QueryExec) advance() {
	for {
		switch ex.phase {
		case phWinS:
			if _, done := ex.ns.Peek(); !done {
				return
			}
			if ex.ns.err != nil {
				ex.failWith("S", ex.ns.err)
				return
			}
			s, _, ok := ex.ns.result()
			if !ok {
				ex.fail()
				return
			}
			// The second NN query starts only after the first finishes,
			// because its query point is the first one's result.
			ex.rxR.WaitUntil(ex.rxS.Now())
			ex.nr = ex.opt.Scratch.nnSearch(ex.rxR, s.Point, ex.opt.ANN.FactorR, ex.opt.maxRetries())
			ex.phase = phWinR

		case phWinR:
			if _, done := ex.nr.Peek(); !done {
				return
			}
			if ex.nr.err != nil {
				ex.failWith("R", ex.nr.err)
				return
			}
			r, _, okR := ex.nr.result()
			if !okR {
				ex.fail()
				return
			}
			s, _, _ := ex.ns.result()
			d := geom.Dist(ex.p, s.Point) + geom.Dist(s.Point, r.Point)
			ex.radius = d
			ex.incumbent = Pair{S: s, R: r, Dist: d}
			ex.haveInc = true
			ex.startFilter()

		case phEstimate:
			_, sDone := ex.ns.Peek()
			_, rDone := ex.nr.Peek()
			if !sDone || !rDone {
				return
			}
			// Escalations are checked S before R so that the reported
			// channel is deterministic when both die.
			if ex.ns.err != nil {
				ex.failWith("S", ex.ns.err)
				return
			}
			if ex.nr.err != nil {
				ex.failWith("R", ex.nr.err)
				return
			}
			s, _, okS := ex.ns.result()
			r, _, okR := ex.nr.result()
			if !okS || !okR {
				ex.fail()
				return
			}
			// The search radius is the transitive distance of the pair the
			// estimate phase produced. For Hybrid, in Case 3 the S-side
			// search already minimized exactly this quantity; in Case 2 the
			// R-side minimized dis(s, ·), its variable part.
			d := geom.TransDist(ex.p, s.Point, r.Point)
			ex.radius = d
			ex.incumbent = Pair{S: s, R: r, Dist: d}
			ex.haveInc = true
			ex.startFilter()

		case phFilter:
			_, sDone := ex.qs.Peek()
			_, rDone := ex.qr.Peek()
			if !sDone || !rDone {
				return
			}
			if ex.qs.err != nil {
				ex.failWith("S", ex.qs.err)
				return
			}
			if ex.qr.err != nil {
				ex.failWith("R", ex.qr.err)
				return
			}
			ex.phase = phJoin
			return // the join is a real Step, not a transition

		default: // phJoin pending a Step, or phDone
			return
		}
	}
}

// startFilter opens the filter phase: capture the estimate-phase tune-in,
// synchronize the channels (the radius depends on both estimate results),
// and create the two circular range searches.
func (ex *QueryExec) startFilter() {
	ex.estimate = ex.rxS.Pages() + ex.rxR.Pages()
	t := ex.clockMax()
	ex.rxS.WaitUntil(t)
	ex.rxR.WaitUntil(t)
	w := geom.Circle{Center: ex.p, R: ex.radius}
	ex.qs = ex.opt.Scratch.rangeSearch(ex.rxS, w, ex.opt.maxRetries())
	ex.qr = ex.opt.Scratch.rangeSearch(ex.rxR, w, ex.opt.maxRetries())
	ex.phase = phFilter
}

// fail finalizes a query whose estimate phase produced no result (possible
// only on empty datasets): metrics are whatever was spent, Found is false.
func (ex *QueryExec) fail() {
	ex.res = Result{Metrics: client.Collect(ex.rxS, ex.rxR)}
	ex.phase = phDone
}

// failWith finalizes a query whose channel died: the search escalated
// after MaxRetries consecutive faulted receptions. The metrics account
// everything spent (including the dead receptions), Found is false, and
// Err carries the tagged ChannelError.
func (ex *QueryExec) failWith(channel string, cerr *broadcast.ChannelError) {
	cerr.Channel = channel
	ex.res = Result{Metrics: client.Collect(ex.rxS, ex.rxR), Err: cerr}
	ex.phase = phDone
}

// joinAndRetrieve is the terminal action: the client-side nested-loop join
// over the filtered candidates, the optional download of the answer pair's
// data pages, and the metric collection.
func (ex *QueryExec) joinAndRetrieve() {
	pair, ok := join(ex.p, ex.incumbent, ex.haveInc, &ex.qs.found, &ex.qr.found)

	var err error
	if ok && !ex.opt.SkipDataRetrieval {
		// The client dozes until the answer objects' data pages are on air
		// and downloads the associated attributes, one object per channel.
		// Retrieval is reliable: a faulted data page retries at the
		// object's next broadcast, escalating like the searches do. On a
		// lossless feed this is exactly the old single DownloadObject. The
		// answer pair is already known at this point, so an escalation
		// keeps it — only the attribute retrieval is reported failed.
		t := ex.clockMax()
		ex.rxS.WaitUntil(t)
		ex.rxR.WaitUntil(t)
		if _, cerr := ex.rxS.DownloadObjectReliable(pair.S.ID, ex.opt.maxRetries()); cerr != nil {
			cerr.Channel = "S"
			err = cerr
		} else if _, cerr := ex.rxR.DownloadObjectReliable(pair.R.ID, ex.opt.maxRetries()); cerr != nil {
			cerr.Channel = "R"
			err = cerr
		}
	}

	m := client.Collect(ex.rxS, ex.rxR)
	ex.res = Result{
		Pair:           pair,
		Found:          ok,
		Metrics:        m,
		EstimateTuneIn: ex.estimate,
		FilterTuneIn:   m.TuneIn - ex.estimate,
		Radius:         ex.radius,
		Case:           ex.caseTag,
		Err:            err,
	}
	ex.phase = phDone
}

// runExec drives one query execution to completion with the trivial
// peek/step loop — the single-client event loop the algorithm functions
// expose.
func runExec(env Env, algo Algo, p geom.Point, opt Options) Result {
	var ex QueryExec
	ex.Reset(env, algo, p, opt)
	for !ex.Done() {
		ex.Step()
	}
	return ex.Result()
}
