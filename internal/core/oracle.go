package core

import (
	"math"

	"tnnbcast/internal/geom"
	"tnnbcast/internal/rtree"
)

// OracleTNN computes the exact TNN answer with full random access to both
// in-memory R-trees — the ground truth the broadcast algorithms are tested
// against, and the reference that defines Approximate-TNN-Search's fail
// rate (Table 3).
//
// It evaluates min over s of dis(p,s) + dis(s, NN_R(s)) but prunes with the
// Window-Based bound: after seeding the incumbent with s0 = p.NN(S) and
// r0 = s0.NN(R), only s within dis(p,s) < d of the query can improve the
// answer (Theorem 1), so one circular range query bounds the work.
func OracleTNN(p geom.Point, treeS, treeR *rtree.Tree) (Pair, bool) {
	s0, _, okS := treeS.NN(p)
	if !okS {
		return Pair{}, false
	}
	r0, _, okR := treeR.NN(s0.Point)
	if !okR {
		return Pair{}, false
	}
	best := Pair{S: s0, R: r0, Dist: geom.TransDist(p, s0.Point, r0.Point)}

	for _, s := range treeS.RangeCircle(geom.Circle{Center: p, R: best.Dist}) {
		ds := geom.Dist(p, s.Point)
		if ds >= best.Dist {
			continue
		}
		r, _, ok := treeR.NN(s.Point)
		if !ok {
			continue
		}
		if t := ds + geom.Dist(s.Point, r.Point); t < best.Dist {
			best = Pair{S: s, R: r, Dist: t}
		}
	}
	return best, true
}

// BruteTNN is the quadratic reference used to validate OracleTNN in tests.
func BruteTNN(p geom.Point, ss, rs []geom.Point) (sIdx, rIdx int, dist float64, ok bool) {
	dist = math.Inf(1)
	sIdx, rIdx = -1, -1
	for i, s := range ss {
		for j, r := range rs {
			if t := geom.TransDist(p, s, r); t < dist {
				dist, sIdx, rIdx, ok = t, i, j, true
			}
		}
	}
	return sIdx, rIdx, dist, ok
}
