package core

// The algorithm registry opens the query layer the same way the AirIndex
// seam opened the broadcast layer: an algorithm is a named factory for
// resumable query executions, the four paper algorithms are registered
// built-ins backed by QueryExec, and new strategies register at runtime.
// Everything above this package — the public Query/Do pipeline, the
// session engine, the experiment harness, the CLI tools — selects
// algorithms exclusively through Algo values resolved here, so a
// registered strategy is usable end to end without touching any of those
// layers.

import (
	"fmt"
	"strings"
	"sync"

	"tnnbcast/internal/geom"
)

// Executor is one query execution as a resumable process: Peek reports
// the next broadcast slot at which the execution wants to act, Step
// performs exactly one action, and Result is valid once Done. The subset
// {Peek, Step} is client.Process, so any Executor can be driven by the
// multi-client scheduler.
type Executor interface {
	Peek() (slot int64, done bool)
	Step()
	Done() bool
	Result() Result
}

// ExecFactory starts one query execution at p in env with the given
// options.
type ExecFactory func(env Env, p geom.Point, opt Options) Executor

// AlgoSpec describes one registered TNN algorithm.
type AlgoSpec struct {
	// Name is the canonical display name (e.g. "Double-NN"). Unique
	// case-insensitively.
	Name string
	// Alias is an optional short lookup name (e.g. "double"). Unique
	// case-insensitively; empty means no alias.
	Alias string
	// New starts one query execution.
	New ExecFactory
}

var algoReg = struct {
	sync.RWMutex
	specs  []AlgoSpec
	byName map[string]Algo
}{byName: make(map[string]Algo)}

// builtinFactory wraps a built-in algorithm as an ExecFactory.
func builtinFactory(a Algo) ExecFactory {
	return func(env Env, p geom.Point, opt Options) Executor {
		ex := new(QueryExec)
		ex.Reset(env, a, p, opt)
		return ex
	}
}

func init() {
	// Registration order fixes the ids; it must match the Algo constants.
	for _, s := range []struct {
		algo  Algo
		alias string
	}{
		{AlgoWindow, "window"},
		{AlgoDouble, "double"},
		{AlgoHybrid, "hybrid"},
		{AlgoApprox, "approx"},
	} {
		id, err := Register(AlgoSpec{Name: s.algo.String(), Alias: s.alias, New: builtinFactory(s.algo)})
		if err != nil || id != s.algo {
			panic(fmt.Sprintf("core: built-in registration broke: %v (id %d)", err, id))
		}
	}
}

// Register adds an algorithm to the registry and returns its Algo id
// (assigned sequentially after the built-ins). The name and alias must be
// non-empty/unique under case-insensitive comparison.
func Register(spec AlgoSpec) (Algo, error) {
	if spec.Name == "" {
		return 0, fmt.Errorf("core: algorithm spec needs a name")
	}
	if spec.New == nil {
		return 0, fmt.Errorf("core: algorithm %q needs an executor factory", spec.Name)
	}
	algoReg.Lock()
	defer algoReg.Unlock()
	keys := []string{strings.ToLower(spec.Name)}
	if spec.Alias != "" {
		keys = append(keys, strings.ToLower(spec.Alias))
	}
	for _, k := range keys {
		if _, dup := algoReg.byName[k]; dup {
			return 0, fmt.Errorf("core: algorithm name %q already registered", k)
		}
	}
	id := Algo(len(algoReg.specs))
	algoReg.specs = append(algoReg.specs, spec)
	for _, k := range keys {
		algoReg.byName[k] = id
	}
	return id, nil
}

// Lookup returns the spec registered under a.
func Lookup(a Algo) (AlgoSpec, bool) {
	algoReg.RLock()
	defer algoReg.RUnlock()
	if a < 0 || int(a) >= len(algoReg.specs) {
		return AlgoSpec{}, false
	}
	return algoReg.specs[a], true
}

// AlgoByName resolves a canonical name or alias (case-insensitive,
// surrounding space ignored) to its Algo id.
func AlgoByName(name string) (Algo, bool) {
	key := strings.ToLower(strings.TrimSpace(name))
	algoReg.RLock()
	defer algoReg.RUnlock()
	a, ok := algoReg.byName[key]
	return a, ok
}

// AlgoNames returns the canonical names of all registered algorithms in
// id order.
func AlgoNames() []string {
	algoReg.RLock()
	defer algoReg.RUnlock()
	names := make([]string, len(algoReg.specs))
	for i, s := range algoReg.specs {
		names[i] = s.Name
	}
	return names
}

// NewExec starts one execution of algorithm a, reporting ok == false for
// an unregistered id. Built-ins get a QueryExec; registered strategies go
// through their factory.
func NewExec(env Env, a Algo, p geom.Point, opt Options) (Executor, bool) {
	spec, ok := Lookup(a)
	if !ok {
		return nil, false
	}
	return spec.New(env, p, opt), true
}

// Run executes algorithm a to completion with the single-client
// peek/step loop, reporting ok == false for an unregistered id. The four
// built-ins dispatch to a stack-allocated QueryExec, keeping the
// sequential hot path allocation-free with a Scratch.
func Run(env Env, a Algo, p geom.Point, opt Options) (Result, bool) {
	if a >= AlgoWindow && a <= AlgoApprox {
		return runExec(env, a, p, opt), true
	}
	ex, ok := NewExec(env, a, p, opt)
	if !ok {
		return Result{}, false
	}
	for !ex.Done() {
		ex.Step()
	}
	return ex.Result(), true
}
