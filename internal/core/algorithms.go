package core

import (
	"math"

	"tnnbcast/internal/broadcast"
	"tnnbcast/internal/client"
	"tnnbcast/internal/geom"
	"tnnbcast/internal/rtree"
)

// Env is the multi-channel broadcast environment a TNN query runs in: one
// channel broadcasting dataset S, one broadcasting dataset R, and the
// common service region (known to clients a priori; Approximate-TNN uses
// its area to scale the unit-square radius estimate).
type Env struct {
	ChS, ChR broadcast.Feed
	Region   geom.Rect
}

// ANNConfig enables the approximate-NN optimization of Section 5. A factor
// of zero means exact search on that channel; the paper uses factor = 1 for
// Window-Based/Double-NN, 1/150–1/200 for Hybrid-NN, and factor 0 on the
// sparser dataset when densities differ.
type ANNConfig struct {
	FactorS, FactorR float64
}

// Options control one query execution.
type Options struct {
	// Issue is the slot at which the query is issued. Channel phase
	// offsets relative to Issue model the random root waiting times.
	Issue int64
	// ANN configures approximate-NN search in the estimate phase.
	ANN ANNConfig
	// SkipDataRetrieval excludes the final download of the answer pair's
	// data pages from the metrics (it is identical for all algorithms).
	SkipDataRetrieval bool
	// Scratch, when non-nil, provides reusable per-query search state
	// (receivers, search processes, candidate queues, entry buffers) so
	// steady-state queries allocate (almost) nothing. It never changes a
	// query's answer or metrics. A Scratch must not be shared between
	// concurrent queries.
	Scratch *Scratch
	// Trace, when non-nil, is invoked once per downloaded page with the
	// channel tag ("S" or "R"), the slot, and the page content. Used for
	// page-level query traces.
	Trace func(channel string, slot int64, page broadcast.Page)
}

// applyTrace wires Options.Trace into the two receivers.
func (o Options) applyTrace(rxS, rxR *client.Receiver) {
	if o.Trace == nil {
		return
	}
	rxS.SetTrace(func(slot int64, pg broadcast.Page) { o.Trace("S", slot, pg) })
	rxR.SetTrace(func(slot int64, pg broadcast.Page) { o.Trace("R", slot, pg) })
}

// HybridCase records which of the three Hybrid-NN cases a query exercised.
type HybridCase int

const (
	// CaseNone applies to non-hybrid algorithms or degenerate runs.
	CaseNone HybridCase = iota
	// Case2 means the Channel-1 (S) search finished first and the
	// Channel-2 search was retargeted to s = p.NN(S).
	Case2
	// Case3 means the Channel-2 (R) search finished first and the
	// Channel-1 search switched to the transitive metric.
	Case3
)

// Pair is a TNN answer: one object from each dataset and the transitive
// distance dis(p,s) + dis(s,r).
type Pair struct {
	S, R rtree.Entry
	Dist float64
}

// Result reports one query execution.
type Result struct {
	Pair  Pair
	Found bool
	// Metrics are the paper's access time (max over channels) and tune-in
	// time (sum over channels), in pages.
	Metrics client.Metrics
	// EstimateTuneIn and FilterTuneIn split the tune-in time by phase
	// (data-retrieval pages count toward FilterTuneIn).
	EstimateTuneIn, FilterTuneIn int64
	// Radius is the search-range radius determined by the estimate phase.
	Radius float64
	// Case is the Hybrid-NN case exercised (CaseNone otherwise).
	Case HybridCase
}

// join is the client-side nested-loop join of Algorithm 1 (lines 7–17):
// scan candidate pairs, keeping the pair with the smallest transitive
// distance. The incumbent (s0, r0, d) — the pair that defined the search
// range — seeds the bound; candidates si with dis(p,si) >= d cannot improve
// it and skip the inner loop.
func join(p geom.Point, incumbent Pair, haveIncumbent bool, ss, rs []rtree.Entry) (Pair, bool) {
	best := incumbent
	ok := haveIncumbent
	d := math.Inf(1)
	if ok {
		d = best.Dist
	}
	for _, si := range ss {
		if geom.Dist(p, si.Point) >= d {
			continue
		}
		for _, rj := range rs {
			if t := geom.TransDist(p, si.Point, rj.Point); t < d {
				d = t
				best = Pair{S: si, R: rj, Dist: t}
				ok = true
			}
		}
	}
	return best, ok
}

// finish runs the shared tail of every algorithm: synchronize the channels
// to the filter phase, run the two circular range queries in parallel, join
// locally, optionally download the answer pair's data pages, and collect
// metrics.
func finish(env Env, p geom.Point, radius float64, incumbent Pair, haveIncumbent bool,
	rxS, rxR *client.Receiver, opt Options, caseTag HybridCase) Result {

	estimate := rxS.Pages() + rxR.Pages()

	// The filter phase starts once the estimate phase has finished on both
	// channels (the radius depends on both results).
	t := rxS.Now()
	if rxR.Now() > t {
		t = rxR.Now()
	}
	rxS.WaitUntil(t)
	rxR.WaitUntil(t)

	w := geom.Circle{Center: p, R: radius}
	qs := opt.Scratch.rangeSearch(rxS, w)
	qr := opt.Scratch.rangeSearch(rxR, w)
	client.RunParallel(qs, qr)

	pair, ok := join(p, incumbent, haveIncumbent, qs.found, qr.found)

	if ok && !opt.SkipDataRetrieval {
		// The client dozes until the answer objects' data pages are on air
		// and downloads the associated attributes, one object per channel.
		t = rxS.Now()
		if rxR.Now() > t {
			t = rxR.Now()
		}
		rxS.WaitUntil(t)
		rxR.WaitUntil(t)
		rxS.DownloadObject(pair.S.ID)
		rxR.DownloadObject(pair.R.ID)
	}

	m := client.Collect(rxS, rxR)
	return Result{
		Pair:           pair,
		Found:          ok,
		Metrics:        m,
		EstimateTuneIn: estimate,
		FilterTuneIn:   m.TuneIn - estimate,
		Radius:         radius,
		Case:           caseTag,
	}
}

// DoubleNN is the Double-NN-Search algorithm (Algorithm 1): issue the two
// nearest-neighbor queries p.NN(S) and p.NN(R) in parallel on the two
// channels as soon as the index roots appear, use
// d = dis(p,s) + dis(s,r) as the search radius, then run the two range
// queries in parallel and join.
func DoubleNN(env Env, p geom.Point, opt Options) Result {
	opt.Scratch.reset()
	rxS := opt.Scratch.receiver(env.ChS, opt.Issue)
	rxR := opt.Scratch.receiver(env.ChR, opt.Issue)
	opt.applyTrace(rxS, rxR)

	ns := opt.Scratch.nnSearch(rxS, p, opt.ANN.FactorS)
	nr := opt.Scratch.nnSearch(rxR, p, opt.ANN.FactorR)
	client.RunParallel(ns, nr)

	s, _, okS := ns.result()
	r, _, okR := nr.result()
	if !okS || !okR {
		return Result{Metrics: client.Collect(rxS, rxR)}
	}
	d := geom.TransDist(p, s.Point, r.Point)
	incumbent := Pair{S: s, R: r, Dist: d}
	return finish(env, p, d, incumbent, true, rxS, rxR, opt, CaseNone)
}

// WindowBased is the Window-Based-TNN-Search algorithm of Zheng–Lee–Lee,
// adapted to the multi-channel environment: the first NN query finds
// s = p.NN(S); the second, which cannot start earlier because its query
// point is s, finds r = s.NN(R); the radius is d = dis(p,s) + dis(s,r).
// The filter-phase range queries do run in parallel on both channels.
func WindowBased(env Env, p geom.Point, opt Options) Result {
	opt.Scratch.reset()
	rxS := opt.Scratch.receiver(env.ChS, opt.Issue)
	rxR := opt.Scratch.receiver(env.ChR, opt.Issue)
	opt.applyTrace(rxS, rxR)

	ns := opt.Scratch.nnSearch(rxS, p, opt.ANN.FactorS)
	client.RunSequential(ns)
	s, _, okS := ns.result()
	if !okS {
		return Result{Metrics: client.Collect(rxS, rxR)}
	}

	// The second NN query starts only after the first finishes.
	rxR.WaitUntil(rxS.Now())
	nr := opt.Scratch.nnSearch(rxR, s.Point, opt.ANN.FactorR)
	client.RunSequential(nr)
	r, _, okR := nr.result()
	if !okR {
		return Result{Metrics: client.Collect(rxS, rxR)}
	}

	d := geom.Dist(p, s.Point) + geom.Dist(s.Point, r.Point)
	incumbent := Pair{S: s, R: r, Dist: d}
	return finish(env, p, d, incumbent, true, rxS, rxR, opt, CaseNone)
}

// HybridNN is the Hybrid-NN-Search algorithm: both NN searches start in
// parallel (Case 1); when one finishes first its result redirects the
// other — Case 2 switches the Channel-2 query point to s = p.NN(S), Case 3
// switches the Channel-1 search to the transitive metric toward r = p.NN(R)
// using MinTransDist and MinMaxTransDist. Delayed pruning (children are
// enqueued unpruned and tested at pop) keeps the redirects correct.
func HybridNN(env Env, p geom.Point, opt Options) Result {
	opt.Scratch.reset()
	rxS := opt.Scratch.receiver(env.ChS, opt.Issue)
	rxR := opt.Scratch.receiver(env.ChR, opt.Issue)
	opt.applyTrace(rxS, rxR)

	ns := opt.Scratch.nnSearch(rxS, p, opt.ANN.FactorS)
	nr := opt.Scratch.nnSearch(rxR, p, opt.ANN.FactorR)

	caseTag := CaseNone
	for {
		_, sDone := ns.Peek()
		_, rDone := nr.Peek()
		if sDone && rDone {
			break
		}
		// Redirect exactly once, at the moment one search finishes while
		// the other still runs.
		if caseTag == CaseNone {
			if sDone && !rDone {
				if s, _, ok := ns.result(); ok {
					nr.retarget(s.Point)
					caseTag = Case2
				}
			} else if rDone && !sDone {
				if r, _, ok := nr.result(); ok {
					ns.switchTransitive(r.Point)
					caseTag = Case3
				}
			}
		}
		client.StepEarliest(ns, nr)
	}

	s, _, okS := ns.result()
	r, _, okR := nr.result()
	if !okS || !okR {
		return Result{Metrics: client.Collect(rxS, rxR)}
	}

	// The search radius is the transitive distance of the pair the
	// estimate phase produced. In Case 3 the S-side search already
	// minimized exactly this quantity; in Case 2 the R-side minimized
	// dis(s, ·), which is the variable part of it.
	d := geom.TransDist(p, s.Point, r.Point)
	incumbent := Pair{S: s, R: r, Dist: d}
	return finish(env, p, d, incumbent, true, rxS, rxR, opt, caseTag)
}

// ApproxRadius is Eq. 1 of the paper: for n points uniformly distributed in
// a unit square, a circle of radius r_k(n) = ln(n)·sqrt(k/(π·n)) encloses
// at least k points with high probability. The radius scales with the
// square root of the region area.
func ApproxRadius(n, k int, area float64) float64 {
	if n <= 0 {
		return 0
	}
	return math.Log(float64(n)) * math.Sqrt(float64(k)/(math.Pi*float64(n))) * math.Sqrt(area)
}

// ApproximateTNN is the Approximate-TNN-Search baseline: skip the estimate
// phase entirely and set the radius to d = r_1(S) + r_1(R) from Eq. 1.
// It is the fastest in access time but does not guarantee the radius
// contains the answer pair; on skewed datasets it can return a non-optimal
// pair or nothing at all (Found == false). Table 3 measures this fail rate.
func ApproximateTNN(env Env, p geom.Point, opt Options) Result {
	opt.Scratch.reset()
	rxS := opt.Scratch.receiver(env.ChS, opt.Issue)
	rxR := opt.Scratch.receiver(env.ChR, opt.Issue)
	opt.applyTrace(rxS, rxR)

	area := env.Region.Area()
	nS := env.ChS.Program().Tree.Count
	nR := env.ChR.Program().Tree.Count
	d := ApproxRadius(nS, 1, area) + ApproxRadius(nR, 1, area)

	return finish(env, p, d, Pair{}, false, rxS, rxR, opt, CaseNone)
}
