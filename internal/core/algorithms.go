package core

import (
	"math"

	"tnnbcast/internal/broadcast"
	"tnnbcast/internal/client"
	"tnnbcast/internal/geom"
	"tnnbcast/internal/rtree"
)

// Env is the multi-channel broadcast environment a TNN query runs in: one
// channel broadcasting dataset S, one broadcasting dataset R, and the
// common service region (known to clients a priori; Approximate-TNN uses
// its area to scale the unit-square radius estimate).
type Env struct {
	ChS, ChR broadcast.Feed
	Region   geom.Rect
}

// ANNConfig enables the approximate-NN optimization of Section 5. A factor
// of zero means exact search on that channel; the paper uses factor = 1 for
// Window-Based/Double-NN, 1/150–1/200 for Hybrid-NN, and factor 0 on the
// sparser dataset when densities differ.
type ANNConfig struct {
	FactorS, FactorR float64
}

// Options control one query execution.
type Options struct {
	// Issue is the slot at which the query is issued. Channel phase
	// offsets relative to Issue model the random root waiting times.
	// Single-shot queries run on a private timeline and accept any value;
	// shared-cycle sessions run on one global timeline starting at slot 0
	// and require Issue >= 0 (see session.Query) — negative issue slots
	// are rejected with a typed error.
	Issue int64
	// ANN configures approximate-NN search in the estimate phase.
	ANN ANNConfig
	// SkipDataRetrieval excludes the final download of the answer pair's
	// data pages from the metrics (it is identical for all algorithms).
	SkipDataRetrieval bool
	// Scratch, when non-nil, provides reusable per-query search state
	// (receivers, search processes, candidate queues, entry buffers) so
	// steady-state queries allocate (almost) nothing. It never changes a
	// query's answer or metrics. A Scratch must not be shared between
	// concurrent queries.
	Scratch *Scratch
	// Trace, when non-nil, is invoked once per downloaded page with the
	// channel tag ("S" or "R"), the slot, and the page content. Used for
	// page-level query traces. Faulted receptions fire TraceFault instead.
	Trace func(channel string, slot int64, page broadcast.Page)
	// TraceFault, when non-nil, is invoked once per faulted reception with
	// the channel tag and the dead slot.
	TraceFault func(channel string, slot int64)
	// MaxRetries bounds the consecutive faulted receptions a query
	// tolerates per channel before giving up with a ChannelError. Zero
	// selects DefaultMaxRetries; lossless feeds never consult it.
	MaxRetries int
}

// DefaultMaxRetries is the escalation bound used when Options.MaxRetries
// is zero: a query survives bursts this long and declares the channel dead
// beyond them.
const DefaultMaxRetries = 16

// maxRetries resolves the escalation bound.
func (o Options) maxRetries() int {
	if o.MaxRetries > 0 {
		return o.MaxRetries
	}
	return DefaultMaxRetries
}

// applyTrace wires Options.Trace/TraceFault into the two receivers.
func (o Options) applyTrace(rxS, rxR *client.Receiver) {
	if o.Trace != nil {
		rxS.SetTrace(func(slot int64, pg broadcast.Page) { o.Trace("S", slot, pg) })
		rxR.SetTrace(func(slot int64, pg broadcast.Page) { o.Trace("R", slot, pg) })
	}
	if o.TraceFault != nil {
		rxS.SetFaultTrace(func(slot int64) { o.TraceFault("S", slot) })
		rxR.SetFaultTrace(func(slot int64) { o.TraceFault("R", slot) })
	}
}

// HybridCase records which of the three Hybrid-NN cases a query exercised.
type HybridCase int

const (
	// CaseNone applies to non-hybrid algorithms or degenerate runs.
	CaseNone HybridCase = iota
	// Case2 means the Channel-1 (S) search finished first and the
	// Channel-2 search was retargeted to s = p.NN(S).
	Case2
	// Case3 means the Channel-2 (R) search finished first and the
	// Channel-1 search switched to the transitive metric.
	Case3
)

// Pair is a TNN answer: one object from each dataset and the transitive
// distance dis(p,s) + dis(s,r).
type Pair struct {
	S, R rtree.Entry
	Dist float64
}

// Result reports one query execution.
type Result struct {
	Pair  Pair
	Found bool
	// Metrics are the paper's access time (max over channels) and tune-in
	// time (sum over channels), in pages.
	Metrics client.Metrics
	// EstimateTuneIn and FilterTuneIn split the tune-in time by phase
	// (data-retrieval pages count toward FilterTuneIn).
	EstimateTuneIn, FilterTuneIn int64
	// Radius is the search-range radius determined by the estimate phase.
	Radius float64
	// Case is the Hybrid-NN case exercised (CaseNone otherwise).
	Case HybridCase
	// Err is non-nil when the query gave up on a dead channel: a
	// *broadcast.ChannelError after MaxRetries consecutive faulted
	// receptions. A search-phase escalation leaves Found false; an
	// escalation during answer retrieval keeps the found Pair (only the
	// attribute download failed). Always nil on lossless feeds.
	Err error
}

// join is the client-side nested-loop join of Algorithm 1 (lines 7–17):
// scan candidate pairs, keeping the pair with the smallest transitive
// distance. The incumbent (s0, r0, d) — the pair that defined the search
// range — seeds the bound; candidates si with dis(p,si) >= d cannot improve
// it and skip the inner loop.
func join(p geom.Point, incumbent Pair, haveIncumbent bool, ss, rs *pointBuf) (Pair, bool) {
	best := incumbent
	ok := haveIncumbent
	d := math.Inf(1)
	if ok {
		d = best.Dist
	}
	// The parallel coordinate slices are always the same length; pinning
	// the y slices to len(x) lets the compiler drop the inner-loop bounds
	// checks (same float ops, same order).
	ssx, rsx := ss.x, rs.x
	ssy, rsy := ss.y[:len(ssx)], rs.y[:len(rsx)]
	for i := range ssx {
		six, siy := ssx[i], ssy[i]
		// An outer Chebyshev screen first: dps is at least the larger
		// coordinate gap (same subtractions), so a gap at or past d skips
		// the hypot along with the inner loop.
		if max(math.Abs(p.X-six), math.Abs(p.Y-siy)) >= d {
			continue
		}
		// dps is both the skip bound and the fixed term of every inner
		// transitive distance dis(p,si) + dis(si,rj) — hoisting it halves
		// the hypot calls of the join without moving a single float op
		// (TransDist is exactly this sum, in this order).
		dps := math.Hypot(p.X-six, p.Y-siy)
		if dps >= d {
			continue
		}
		for j := range rsx {
			// Chebyshev screen: hypot(dx,dy) >= max(|dx|,|dy|) holds in
			// floating point (hypot never rounds below its larger leg),
			// and rounding is monotone, so dps+max >= d implies the full
			// dps+hypot >= d — the pair would be discarded anyway. The
			// screen eliminates most hypot calls of the O(|S|·|R|) join
			// without changing a single comparison outcome.
			m := max(math.Abs(six-rsx[j]), math.Abs(siy-rsy[j]))
			if dps+m >= d {
				continue
			}
			if t := dps + math.Hypot(six-rsx[j], siy-rsy[j]); t < d {
				d = t
				best = Pair{S: ss.entry(i), R: rs.entry(j), Dist: t}
				ok = true
			}
		}
	}
	return best, ok
}

// DoubleNN is the Double-NN-Search algorithm (Algorithm 1): issue the two
// nearest-neighbor queries p.NN(S) and p.NN(R) in parallel on the two
// channels as soon as the index roots appear, use
// d = dis(p,s) + dis(s,r) as the search radius, then run the two range
// queries in parallel and join.
func DoubleNN(env Env, p geom.Point, opt Options) Result {
	return runExec(env, AlgoDouble, p, opt)
}

// WindowBased is the Window-Based-TNN-Search algorithm of Zheng–Lee–Lee,
// adapted to the multi-channel environment: the first NN query finds
// s = p.NN(S); the second, which cannot start earlier because its query
// point is s, finds r = s.NN(R); the radius is d = dis(p,s) + dis(s,r).
// The filter-phase range queries do run in parallel on both channels.
func WindowBased(env Env, p geom.Point, opt Options) Result {
	return runExec(env, AlgoWindow, p, opt)
}

// HybridNN is the Hybrid-NN-Search algorithm: both NN searches start in
// parallel (Case 1); when one finishes first its result redirects the
// other — Case 2 switches the Channel-2 query point to s = p.NN(S), Case 3
// switches the Channel-1 search to the transitive metric toward r = p.NN(R)
// using MinTransDist and MinMaxTransDist. Delayed pruning (children are
// enqueued unpruned and tested at pop) keeps the redirects correct.
func HybridNN(env Env, p geom.Point, opt Options) Result {
	return runExec(env, AlgoHybrid, p, opt)
}

// ApproxRadius is Eq. 1 of the paper: for n points uniformly distributed in
// a unit square, a circle of radius r_k(n) = ln(n)·sqrt(k/(π·n)) encloses
// at least k points with high probability. The radius scales with the
// square root of the region area.
func ApproxRadius(n, k int, area float64) float64 {
	if n <= 0 {
		return 0
	}
	return math.Log(float64(n)) * math.Sqrt(float64(k)/(math.Pi*float64(n))) * math.Sqrt(area)
}

// ApproximateTNN is the Approximate-TNN-Search baseline: skip the estimate
// phase entirely and set the radius to d = r_1(S) + r_1(R) from Eq. 1.
// It is the fastest in access time but does not guarantee the radius
// contains the answer pair; on skewed datasets it can return a non-optimal
// pair or nothing at all (Found == false). Table 3 measures this fail rate.
func ApproximateTNN(env Env, p geom.Point, opt Options) Result {
	return runExec(env, AlgoApprox, p, opt)
}
