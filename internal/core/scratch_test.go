package core

// Scratch state-leak audit. A Scratch carries candidate queues, seen/found
// buffers, receivers, and search structs across queries; any field that
// survives reset un-reinitialized (stale options, radii, partially drained
// queues, leftover bounds) would make a query's answer depend on the
// queries that ran before it. The regression test below runs a deliberately
// mismatched query sequence — algorithms, ANN factors, retrieval options,
// issue slots, dataset shapes (including empty), and the extension queries
// that use more scratch slots than the core four — through ONE scratch and
// demands bit-identical Results to a fresh scratch per query.

import (
	"math/rand"
	"reflect"
	"testing"

	"tnnbcast/internal/broadcast"
	"tnnbcast/internal/geom"
)

func TestScratchReuseMismatchedSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	big := makeEnv(t, uniformPts(rng, 1200, testRegion), clusteredPts(rng, 900, 5, testRegion),
		testRegion, 7919, 104729)
	small := makeEnv(t, uniformPts(rng, 40, testRegion), uniformPts(rng, 25, testRegion),
		testRegion, 3, 17)
	empty := makeEnv(t, nil, nil, testRegion, 0, 0)
	halfEmpty := makeEnv(t, nil, uniformPts(rng, 60, testRegion), testRegion, 5, 9)
	// A 3-channel chain environment reuses the broadcasts above; ChainTNN
	// consumes three receiver/search slots, more than the core four leave
	// behind.
	chainEnv := MultiEnv{
		Chs:    []broadcast.Feed{big.env.ChS, big.env.ChR, small.env.ChS},
		Region: testRegion,
	}

	type step struct {
		name string
		run  func(opt Options) any
	}
	qp := func() geom.Point { return geom.Pt(rng.Float64()*1000, rng.Float64()*1000) }

	// Each step captures its own query point and options so the same step
	// can be replayed against a fresh scratch.
	var steps []step
	add := func(name string, fn func(opt Options) any) {
		steps = append(steps, step{name: name, run: fn})
	}
	mk := func(env Env, algo func(Env, geom.Point, Options) Result, p geom.Point) func(Options) any {
		return func(opt Options) any { return algo(env, p, opt) }
	}

	// A sequence chosen to leave maximally mismatched residue between
	// steps: a big ANN hybrid (transitive mode, ellipse frame, deep
	// queues) into a tiny exact window; an approximate query (no estimate
	// phase, range-only) into a failing empty-env query (no filter phase
	// at all, queues untouched); retrieval-skipping into retrieval-heavy;
	// extension queries that consume extra scratch slots into core ones.
	add("hybrid-ann-big", mk(big.env, HybridNN, qp()))
	add("window-exact-small", mk(small.env, WindowBased, qp()))
	add("approx-big", mk(big.env, ApproximateTNN, qp()))
	add("double-empty", mk(empty.env, DoubleNN, qp()))
	add("hybrid-half-empty", mk(halfEmpty.env, HybridNN, qp()))
	add("double-ann-big", mk(big.env, DoubleNN, qp()))
	add("window-half-empty", mk(halfEmpty.env, WindowBased, qp()))
	p1 := qp()
	add("topk-big", func(opt Options) any { return TopKTNN(big.env, p1, 7, opt) })
	add("double-small", mk(small.env, DoubleNN, qp()))
	p2 := qp()
	add("roundtrip-big", func(opt Options) any { return RoundTripTNN(big.env, p2, opt) })
	add("hybrid-small", mk(small.env, HybridNN, qp()))
	p3 := qp()
	add("unordered-small", func(opt Options) any {
		r, first := UnorderedTNN(small.env, p3, opt)
		return []any{r, first}
	})
	add("approx-empty", mk(empty.env, ApproximateTNN, qp()))
	p4 := qp()
	add("chain-3", func(opt Options) any { return ChainTNN(chainEnv, p4, opt) })
	add("window-big", mk(big.env, WindowBased, qp()))

	// Per-step options, drawn once so both runs see identical queries.
	opts := make([]Options, len(steps))
	for i := range opts {
		switch i % 3 {
		case 0:
			opts[i].ANN = UniformANN(FactorWindowDouble)
		case 1:
			opts[i].ANN = ANNConfig{FactorS: 0, FactorR: FactorHybrid}
		}
		opts[i].Issue = rng.Int63n(4000)
		opts[i].SkipDataRetrieval = i%4 == 1
	}

	// Reference: a fresh scratch for every step.
	want := make([]any, len(steps))
	for i, s := range steps {
		o := opts[i]
		o.Scratch = NewScratch()
		want[i] = s.run(o)
	}

	// Audit run: one scratch across the whole mismatched sequence.
	shared := NewScratch()
	for i, s := range steps {
		o := opts[i]
		o.Scratch = shared
		got := s.run(o)
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("step %d (%s): result differs after scratch reuse\n got: %+v\nwant: %+v",
				i, s.name, got, want[i])
		}
	}

	// And the whole sequence again through the same scratch, in reverse,
	// so every step also sees the residue of its successors.
	for i := len(steps) - 1; i >= 0; i-- {
		o := opts[i]
		o.Scratch = shared
		if got := steps[i].run(o); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("reverse step %d (%s): result differs after scratch reuse", i, steps[i].name)
		}
	}
}
