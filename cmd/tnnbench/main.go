// Command tnnbench regenerates the paper's evaluation: every figure and
// table of Section 6 has an experiment ID (fig9a … fig13b, tab3, grid).
//
// Usage:
//
//	tnnbench -exp fig9a                # one experiment, paper defaults
//	tnnbench -exp all -queries 200     # everything, reduced query count
//	tnnbench -exp tab3 -csv            # CSV output
//	tnnbench -clients 100,1000,4000    # multi-client session scaling ladder
//	tnnbench -exp fig9a -index distributed   # swap the air-index family
//	tnnbench -exp fig9a -sched skewed        # broadcast-disks data schedule
//	tnnbench -exp ablation-loss              # loss-rate ladder, both index families
//	tnnbench -exp fig9a -loss 0.01 -burst 8  # lossy channels for any experiment
//	tnnbench -list                     # list experiment IDs
//
// -loss/-burst/-corrupt/-faultseed subject every channel to the seeded
// fault model (page loss, bursty loss, checksum-detected corruption).
// Queries recover transparently — answers are identical to the lossless
// run; only access time and tune-in grow.
//
// -index/-cut and -sched/-disks/-ratio select the air-index family and the
// data schedule for EVERY experiment run; the ablation-index, ablation-cut,
// and ablation-sched experiments compare the families directly. -algos
// restricts (or extends) the algorithm set of the exact-search
// experiments through the algorithm registry — strategies registered via
// tnnbcast.RegisterAlgorithm are selectable by name alongside the
// built-ins.
//
// The paper averages 1,000 random query points per configuration; -queries
// trades accuracy for speed. All randomness is seeded, so runs are
// reproducible.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"tnnbcast/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment ID (fig9a…fig13b, tab3, grid) or \"all\"")
		queries   = flag.Int("queries", 1000, "random query points per configuration")
		seed      = flag.Int64("seed", 0, "random seed (0 = default)")
		pageCap   = flag.Int("page", 64, "page capacity in bytes (64, 128, 256, 512)")
		algos     = flag.String("algos", "", "comma-separated algorithm override for the exact-search experiments (canonical names or window/double/hybrid/approx; default: all four)")
		index     = flag.String("index", "preorder", "air-index family: preorder (the paper's (1,m) scheme) or distributed (replicated upper levels)")
		cut       = flag.Int("cut", 0, "distributed index: number of replicated upper levels (0 = half the tree height)")
		sched     = flag.String("sched", "flat", "data schedule: flat (every object once per cycle) or skewed (broadcast-disks)")
		disks     = flag.Int("disks", 2, "skewed schedule: number of frequency classes")
		ratio     = flag.Int("ratio", 2, "skewed schedule: integer frequency ratio between adjacent classes")
		workers   = flag.Int("workers", 0, "parallel query workers per experiment (0 = GOMAXPROCS, 1 = sequential; results are identical for any value)")
		loss      = flag.Float64("loss", 0, "page loss probability on every channel, in [0, 1) (0 = perfect channels)")
		burst     = flag.Float64("burst", 0, "mean loss-burst length in pages (<= 1 = independent loss, > 1 = Gilbert-Elliott bursts at the same stationary rate)")
		corrupt   = flag.Float64("corrupt", 0, "independent per-page corruption probability, in [0, 1) (corrupted pages cost tune-in before being discarded)")
		faultseed = flag.Uint64("faultseed", 0, "fault-pattern seed (0 = fixed default; faults are a pure function of seed and slot)")
		clients   = flag.String("clients", "", "run the multi-client session experiment with this comma-separated concurrent-client ladder (e.g. 100,1000,4000,1000000)")
		window    = flag.Float64("window", 0, "multi-client arrival window in broadcast cycles (0 = all issue slots inside one cycle; required above 100k clients, where only an arrival process bounds concurrency)")
		verify    = flag.Bool("verify", false, "re-run the multi-client batch with workers=1 and fail unless every per-client result is bit-identical (worker-count invariance at scale)")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file (inspect with go tool pprof)")
		memprof   = flag.String("memprofile", "", "write an allocation profile, taken after the experiment runs, to this file")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		ids := make([]string, 0, len(experiments.Registry))
		for id := range experiments.Registry {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}
	switch *index {
	case "preorder", "distributed":
	default:
		fmt.Fprintf(os.Stderr, "tnnbench: unknown -index %q (preorder or distributed)\n", *index)
		os.Exit(2)
	}
	cfg := experiments.Config{Queries: *queries, Seed: *seed, PageCap: *pageCap, Workers: *workers,
		Scheme: *index, Cut: *cut, Window: *window, VerifyWorkers: *verify,
		Loss: *loss, Burst: *burst, Corrupt: *corrupt, FaultSeed: *faultseed}
	if *window < 0 {
		fmt.Fprintf(os.Stderr, "tnnbench: -window must be >= 0, got %g\n", *window)
		os.Exit(2)
	}
	if *loss < 0 || *loss >= 1 || *corrupt < 0 || *corrupt >= 1 || *burst < 0 {
		fmt.Fprintln(os.Stderr, "tnnbench: -loss and -corrupt must be in [0, 1) and -burst >= 0")
		os.Exit(2)
	}
	if *algos != "" {
		for _, name := range strings.Split(*algos, ",") {
			cfg.Algos = append(cfg.Algos, strings.TrimSpace(name))
		}
		// Validate up front for a friendly error instead of a mid-run panic.
		if _, err := experiments.AlgosByName(cfg.Algos); err != nil {
			fmt.Fprintln(os.Stderr, "tnnbench:", err)
			os.Exit(2)
		}
	}
	switch *sched {
	case "flat":
	case "skewed":
		// The same bounds the public API enforces (tnnbcast.WithSkewedSchedule).
		if *disks < 1 || *disks > 16 {
			fmt.Fprintf(os.Stderr, "tnnbench: -disks must be in 1..16, got %d\n", *disks)
			os.Exit(2)
		}
		if *ratio < 2 || *ratio > 16 {
			fmt.Fprintf(os.Stderr, "tnnbench: -ratio must be in 2..16, got %d\n", *ratio)
			os.Exit(2)
		}
		cfg.SkewDisks, cfg.SkewRatio = *disks, *ratio
	default:
		fmt.Fprintf(os.Stderr, "tnnbench: unknown -sched %q (flat or skewed)\n", *sched)
		os.Exit(2)
	}

	// -clients is shorthand for the "clients" experiment with an explicit
	// concurrent-client ladder.
	if *clients != "" {
		for _, f := range strings.Split(*clients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "tnnbench: bad -clients value %q\n", f)
				os.Exit(2)
			}
			if n > experiments.SeqBaselineCap && *window <= 0 {
				fmt.Fprintf(os.Stderr, "tnnbench: %d clients need -window W (arrivals over W cycles); with every issue slot inside one cycle the whole population is concurrently live by construction\n", n)
				os.Exit(2)
			}
			cfg.Clients = append(cfg.Clients, n)
		}
		if *exp == "" {
			*exp = "clients"
		}
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "tnnbench: -exp is required (use -list to see IDs)")
		flag.Usage()
		os.Exit(2)
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.Order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := experiments.Registry[id]; !ok {
				fmt.Fprintf(os.Stderr, "tnnbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tnnbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tnnbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tnnbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle to reachable memory before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tnnbench:", err)
			}
		}()
	}

	for _, id := range ids {
		start := time.Now()
		beforeN := experiments.QueriesExecuted.Load()
		beforeT := experiments.QueryNanos.Load()
		table := experiments.Registry[id](cfg)
		elapsed := time.Since(start)
		nq := experiments.QueriesExecuted.Load() - beforeN
		qt := time.Duration(experiments.QueryNanos.Load() - beforeT)
		if *csv {
			fmt.Printf("# %s — %s\n%s\n", table.ID, table.Title, table.CSV())
		} else {
			perQuery := "n/a"
			if nq > 0 {
				// Mean algorithm execution time: oracle verification,
				// dataset generation, R-tree packing, and program builds
				// are all excluded.
				perQuery = (qt / time.Duration(nq)).Round(time.Microsecond).String()
			}
			fmt.Printf("%s(elapsed %s, %d queries, avg %s/query)\n\n",
				table.Format(), elapsed.Round(time.Millisecond), nq, perQuery)
		}
	}
}
