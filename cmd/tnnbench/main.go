// Command tnnbench regenerates the paper's evaluation: every figure and
// table of Section 6 has an experiment ID (fig9a … fig13b, tab3, grid).
//
// Usage:
//
//	tnnbench -exp fig9a                # one experiment, paper defaults
//	tnnbench -exp all -queries 200     # everything, reduced query count
//	tnnbench -exp tab3 -csv            # CSV output
//	tnnbench -clients 100,1000,4000    # multi-client session scaling ladder
//	tnnbench -list                     # list experiment IDs
//
// The paper averages 1,000 random query points per configuration; -queries
// trades accuracy for speed. All randomness is seeded, so runs are
// reproducible.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tnnbcast/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID (fig9a…fig13b, tab3, grid) or \"all\"")
		queries = flag.Int("queries", 1000, "random query points per configuration")
		seed    = flag.Int64("seed", 0, "random seed (0 = default)")
		pageCap = flag.Int("page", 64, "page capacity in bytes (64, 128, 256, 512)")
		workers = flag.Int("workers", 0, "parallel query workers per experiment (0 = GOMAXPROCS, 1 = sequential; results are identical for any value)")
		clients = flag.String("clients", "", "run the multi-client session experiment with this comma-separated concurrent-client ladder (e.g. 100,1000,4000)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		ids := make([]string, 0, len(experiments.Registry))
		for id := range experiments.Registry {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}
	cfg := experiments.Config{Queries: *queries, Seed: *seed, PageCap: *pageCap, Workers: *workers}

	// -clients is shorthand for the "clients" experiment with an explicit
	// concurrent-client ladder.
	if *clients != "" {
		for _, f := range strings.Split(*clients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "tnnbench: bad -clients value %q\n", f)
				os.Exit(2)
			}
			cfg.Clients = append(cfg.Clients, n)
		}
		if *exp == "" {
			*exp = "clients"
		}
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "tnnbench: -exp is required (use -list to see IDs)")
		flag.Usage()
		os.Exit(2)
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.Order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := experiments.Registry[id]; !ok {
				fmt.Fprintf(os.Stderr, "tnnbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		start := time.Now()
		beforeN := experiments.QueriesExecuted.Load()
		beforeT := experiments.QueryNanos.Load()
		table := experiments.Registry[id](cfg)
		elapsed := time.Since(start)
		nq := experiments.QueriesExecuted.Load() - beforeN
		qt := time.Duration(experiments.QueryNanos.Load() - beforeT)
		if *csv {
			fmt.Printf("# %s — %s\n%s\n", table.ID, table.Title, table.CSV())
		} else {
			perQuery := "n/a"
			if nq > 0 {
				// Mean algorithm execution time: oracle verification,
				// dataset generation, R-tree packing, and program builds
				// are all excluded.
				perQuery = (qt / time.Duration(nq)).Round(time.Microsecond).String()
			}
			fmt.Printf("%s(elapsed %s, %d queries, avg %s/query)\n\n",
				table.Format(), elapsed.Round(time.Millisecond), nq, perQuery)
		}
	}
}
