// Command datagen generates and inspects the evaluation datasets: the
// uniform density/size series, the clustered generator, and the CITY/POST
// real-data substitutes.
//
// Usage:
//
//	datagen -kind uniform -n 15210            # CSV points to stdout
//	datagen -kind city -stats                 # skew statistics only
//	datagen -kind post -out post.csv
//	datagen -kind clustered -n 5000 -clusters 8
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"

	"tnnbcast/internal/dataset"
	"tnnbcast/internal/geom"
)

func main() {
	var (
		kind     = flag.String("kind", "uniform", "uniform | clustered | city | post")
		n        = flag.Int("n", 10000, "point count (uniform/clustered)")
		clusters = flag.Int("clusters", 8, "cluster count (clustered)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output file (default stdout)")
		stats    = flag.Bool("stats", false, "print statistics instead of points")
	)
	flag.Parse()

	var pts []geom.Point
	region := dataset.PaperRegion
	switch *kind {
	case "uniform":
		pts = dataset.Uniform(*seed, *n, region)
	case "clustered":
		pts = dataset.Clustered(*seed, *n, *clusters, 0.02, region)
	case "city":
		pts = dataset.City(*seed)
	case "post":
		pts = dataset.Post(*seed)
		region = dataset.PostRegion
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if *stats {
		printStats(pts, region)
		return
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()
	fmt.Fprintln(w, "x,y")
	for _, p := range pts {
		fmt.Fprintf(w, "%.2f,%.2f\n", p.X, p.Y)
	}
}

// printStats reports cardinality, extent, and a grid-based skew index (the
// coefficient of variation of per-cell counts; 0 for perfectly uniform).
func printStats(pts []geom.Point, region geom.Rect) {
	const g = 16
	counts := make([]float64, g*g)
	mbr := geom.EmptyRect()
	for _, p := range pts {
		mbr = mbr.Extend(p)
		x := int((p.X - region.Lo.X) / region.Width() * g)
		y := int((p.Y - region.Lo.Y) / region.Height() * g)
		if x >= g {
			x = g - 1
		}
		if y >= g {
			y = g - 1
		}
		counts[y*g+x]++
	}
	mean := float64(len(pts)) / (g * g)
	var ss float64
	empty := 0
	for _, c := range counts {
		d := c - mean
		ss += d * d
		if c == 0 {
			empty++
		}
	}
	cv := math.Sqrt(ss/(g*g)) / mean
	fmt.Printf("points:      %d\n", len(pts))
	fmt.Printf("region:      %.0f × %.0f\n", region.Width(), region.Height())
	fmt.Printf("extent:      (%.0f,%.0f)–(%.0f,%.0f)\n", mbr.Lo.X, mbr.Lo.Y, mbr.Hi.X, mbr.Hi.Y)
	fmt.Printf("density:     %.3g points/unit²\n", float64(len(pts))/region.Area())
	fmt.Printf("skew (CV):   %.2f over a %d×%d grid\n", cv, g, g)
	fmt.Printf("empty cells: %d of %d (%.0f%%)\n", empty, g*g, 100*float64(empty)/(g*g))
}
