// Command tnnserve puts a TNN broadcast service on a real wire: it builds
// the two-channel (or single multiplexed) broadcast program for a pair of
// synthetic datasets and replays it onto sockets — one frame per slot per
// channel, paced by -slot, looping indefinitely. Clients connect with
// tnnbcast.Connect (or tnnquery -connect) and run any TNN algorithm
// against the live packets.
//
// The -loss / -corrupt flags inject the deterministic fault model into the
// transmissions, so a lossy wire service is reproducible and comparable
// against the equivalent in-process simulation.
//
// Usage:
//
//	tnnserve -addr :7311 -s 10000 -r 10000
//	tnnserve -addr 127.0.0.1:0 -s 2000 -r 2000 -slot 1ms -scheme distributed
//	tnnserve -addr :7311 -loss 0.05 -faultseed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"tnnbcast"
	"tnnbcast/internal/broadcast"
	"tnnbcast/internal/netfeed"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7311", "TCP listen address (port 0 picks an ephemeral port)")
		sizeS     = flag.Int("s", 10000, "size of dataset S")
		sizeR     = flag.Int("r", 10000, "size of dataset R")
		seed      = flag.Int64("seed", 1, "random seed (datasets and channel phases)")
		pageCap   = flag.Int("page", 64, "page capacity in bytes")
		dataSize  = flag.Int("data", 1024, "data object size in bytes")
		slotDur   = flag.Duration("slot", netfeed.DefaultSlotDur, "real-time duration of one broadcast slot")
		scheme    = flag.String("scheme", "preorder", "air-index scheme: preorder | distributed")
		single    = flag.Bool("single", false, "multiplex both datasets on one physical channel")
		loss      = flag.Float64("loss", 0, "injected page loss probability in [0,1)")
		corrupt   = flag.Float64("corrupt", 0, "injected page corruption probability in [0,1)")
		faultSeed = flag.Uint64("faultseed", 1, "fault pattern seed (with -loss / -corrupt)")
		restart   = flag.Bool("restartable", false, "mark the shutdown GOODBYE with a restart hint so clients reconnect instead of failing terminally")
	)
	flag.Parse()

	params := broadcast.DefaultParams()
	params.PageCap = *pageCap
	params.DataSize = *dataSize
	spec := netfeed.Spec{
		Params: params,
		Single: *single,
		OffS:   *seed * 7919,
		OffR:   *seed * 104729,
		Region: tnnbcast.PaperRegion,
		S:      tnnbcast.UniformDataset(*seed+1, *sizeS, tnnbcast.PaperRegion),
		R:      tnnbcast.UniformDataset(*seed+2, *sizeR, tnnbcast.PaperRegion),
	}
	switch *scheme {
	case "preorder":
		spec.Scheme = broadcast.SchemePreorder
	case "distributed":
		spec.Scheme = broadcast.SchemeDistributed
	default:
		fmt.Fprintf(os.Stderr, "tnnserve: unknown scheme %q (preorder | distributed)\n", *scheme)
		os.Exit(2)
	}

	srv, err := netfeed.NewServer(netfeed.ServerConfig{
		Spec:        spec,
		SlotDur:     *slotDur,
		Faults:      broadcast.FaultModel{Loss: *loss, Corrupt: *corrupt, Seed: *faultSeed},
		RestartHint: *restart,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnnserve:", err)
		os.Exit(2)
	}
	if err := srv.Start(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "tnnserve:", err)
		os.Exit(1)
	}
	fmt.Printf("tnnserve: broadcasting on %s (%s per slot, scheme %s, |S|=%d |R|=%d)\n",
		srv.Addr(), *slotDur, *scheme, *sizeS, *sizeR)
	if *loss > 0 || *corrupt > 0 {
		fmt.Printf("tnnserve: injecting loss=%.3f corrupt=%.3f seed=%d\n", *loss, *corrupt, *faultSeed)
	}

	// First signal: graceful drain — finish the slot on air, tell every
	// client GOODBYE (with the restart hint under -restartable), flush,
	// close. A second signal force-exits a drain that cannot complete.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if *restart {
		fmt.Println("tnnserve: draining (clients told to reconnect)")
	} else {
		fmt.Println("tnnserve: draining (clients told the broadcast is over)")
	}
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
		fmt.Println("tnnserve: drained")
	case <-sig:
		fmt.Fprintln(os.Stderr, "tnnserve: second signal, aborting drain")
		os.Exit(1)
	}
}
