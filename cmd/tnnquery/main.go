// Command tnnquery executes a single TNN query over a freshly built
// two-channel broadcast and reports the answer, the metrics, and — with
// -trace — the page-by-page download schedule on both channels. The trace
// makes the linear-medium behaviour of Figure 10 concrete: one can watch
// the client doze between scheduled arrivals and see which index pages each
// algorithm pays for.
//
// tnnquery runs entirely on the public Query API v2: queries go through
// the unified request pipeline and the trace is the Cursor's typed event
// stream (PhaseStart / RadiusSet / PageDownloaded), not an internal hook.
// Any algorithm registered with tnnbcast.RegisterAlgorithm is selectable
// by name next to the built-ins.
//
// With -connect, tnnquery skips the local broadcast build and runs the
// same queries against a live tnnserve service instead: the datasets and
// schedule come from the service's preamble, receptions ride real packets,
// and the report gains the raw reception counters (bytes read off the
// wire — the tune-in measurement taken on the socket).
//
// Usage:
//
//	tnnquery -algo double -s 10000 -r 10000 -x 19500 -y 19500
//	tnnquery -algo hybrid -s 2000 -r 30000 -trace
//	tnnquery -algo all -s 5000 -r 5000
//	tnnquery -algo all -connect 127.0.0.1:7311
package main

import (
	"flag"
	"fmt"
	"os"

	"tnnbcast"
)

// querier is the query surface shared by the local System and a connected
// RemoteSystem (whose Query/Start default the issue slot to the live one).
type querier interface {
	Query(p tnnbcast.Point, algo tnnbcast.Algorithm, opts ...tnnbcast.QueryOption) tnnbcast.Result
	Start(p tnnbcast.Point, algo tnnbcast.Algorithm, opts ...tnnbcast.QueryOption) (*tnnbcast.Cursor, error)
	Exact(p tnnbcast.Point) (tnnbcast.Result, bool)
	ChannelStats() (s, r tnnbcast.Stats)
}

func main() {
	var (
		algo     = flag.String("algo", "double", "window | double | hybrid | approx | all, or a registered algorithm name")
		sizeS    = flag.Int("s", 10000, "size of dataset S")
		sizeR    = flag.Int("r", 10000, "size of dataset R")
		x        = flag.Float64("x", 19500, "query point x")
		y        = flag.Float64("y", 19500, "query point y")
		seed     = flag.Int64("seed", 1, "random seed (datasets and channel phases)")
		pageCap  = flag.Int("page", 64, "page capacity in bytes")
		dataSize = flag.Int("data", 1024, "data object size in bytes")
		ann      = flag.Float64("ann", 0, "ANN adjustment factor (0 = exact search)")
		trace    = flag.Bool("trace", false, "print the page-by-page download schedule")
		connect  = flag.String("connect", "", "query a live tnnserve service at this address instead of simulating")
		timeout  = flag.Duration("timeout", 0, "with -connect: bound on dial + handshake (0 = default 10s)")
	)
	flag.Parse()

	var sys querier
	var remote *tnnbcast.RemoteSystem
	if *connect != "" {
		var copts []tnnbcast.ConnectOption
		if *timeout > 0 {
			copts = append(copts, tnnbcast.WithConnectTimeout(*timeout))
		}
		rs, err := tnnbcast.Connect(*connect, copts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tnnquery:", err)
			os.Exit(1)
		}
		defer rs.Close()
		fmt.Printf("connected to %s (live slot %d)\n", *connect, rs.LiveSlot())
		sys, remote = rs, rs
	} else {
		region := tnnbcast.PaperRegion
		ptsS := tnnbcast.UniformDataset(*seed+1, *sizeS, region)
		ptsR := tnnbcast.UniformDataset(*seed+2, *sizeR, region)
		// WithPhases normalizes cyclically, so passing the raw products keeps
		// the pre-v2 offsets (seed*7919 mod cycleS, seed*104729 mod cycleR).
		local, err := tnnbcast.New(ptsS, ptsR,
			tnnbcast.WithRegion(region),
			tnnbcast.WithPageCap(*pageCap),
			tnnbcast.WithDataSize(*dataSize),
			tnnbcast.WithPhases(*seed*7919, *seed*104729))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tnnquery:", err)
			os.Exit(2)
		}
		sys = local
	}

	statS, statR := sys.ChannelStats()
	for _, c := range []struct {
		name string
		st   tnnbcast.Stats
	}{{"S", statS}, {"R", statR}} {
		fmt.Printf("channel %s: %d points, %d index pages, %d data pages, (1,%d) interleave, cycle %d slots\n",
			c.name, c.st.Points, c.st.IndexPages, c.st.DataPages, c.st.Interleave, c.st.CycleLen)
	}

	p := tnnbcast.Pt(*x, *y)
	oracle, oracleOK := sys.Exact(p)
	if oracleOK {
		fmt.Printf("exact TNN (oracle): s=%v r=%v dist=%.2f\n\n", oracle.S, oracle.R, oracle.Dist)
	}

	var names []string
	if *algo == "all" {
		names = []string{"window", "double", "hybrid", "approx"}
	} else {
		names = []string{*algo}
	}
	for _, name := range names {
		a, ok := tnnbcast.AlgorithmByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "tnnquery: unknown algorithm %q (registered: %v)\n",
				name, tnnbcast.Algorithms())
			os.Exit(2)
		}
		var res tnnbcast.Result
		if *trace {
			fmt.Printf("%s download schedule:\n", name)
			cur, err := sys.Start(p, a, tnnbcast.WithANN(*ann))
			if err != nil {
				fmt.Fprintln(os.Stderr, "tnnquery:", err)
				os.Exit(2)
			}
			for ev := range cur.Events() {
				switch e := ev.(type) {
				case tnnbcast.PhaseStart:
					fmt.Printf("  --- %s phase (slot %d)\n", e.Phase, e.Slot)
				case tnnbcast.RadiusSet:
					fmt.Printf("  --- search radius %.2f (slot %d)\n", e.Radius, e.Slot)
				case tnnbcast.PageDownloaded:
					if e.Kind == tnnbcast.PageIndex {
						fmt.Printf("  [%s] slot %8d  index node %d\n", e.Channel, e.Slot, e.NodeID)
					} else {
						fmt.Printf("  [%s] slot %8d  data object %d (fragment %d)\n",
							e.Channel, e.Slot, e.ObjectID, e.Seq)
					}
				}
			}
			res = cur.Result()
		} else {
			res = sys.Query(p, a, tnnbcast.WithANN(*ann))
		}
		if !res.Found {
			fmt.Printf("%-8s NO ANSWER (search range missed the pair)\n", name)
			continue
		}
		status := "exact"
		if oracleOK && res.Dist > oracle.Dist*(1+1e-9) {
			status = fmt.Sprintf("SUBOPTIMAL (+%.1f%%)", 100*(res.Dist/oracle.Dist-1))
		}
		fmt.Printf("%-8s s=%v r=%v dist=%.2f [%s]\n", name, res.S, res.R, res.Dist, status)
		fmt.Printf("         access %d pages, tune-in %d pages (estimate %d + filter %d), radius %.2f",
			res.AccessTime, res.TuneIn, res.EstimateTuneIn, res.FilterTuneIn, res.Radius)
		if res.Case != tnnbcast.HybridCaseNone {
			fmt.Printf(", hybrid case %d", int(res.Case)+1)
		}
		if res.Lost > 0 {
			fmt.Printf(", %d lost / %d retried / %d recovery slots", res.Lost, res.Retries, res.RecoverySlots)
		}
		fmt.Println()
	}

	if remote != nil {
		if err := remote.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "tnnquery: connection degraded:", err)
			os.Exit(1)
		}
		st := remote.NetStats()
		fmt.Printf("wire: %d frames / %d bytes read (+%d preamble bytes), %dB per frame\n",
			st.FramesRead, st.BytesRead, st.PreambleBytes, st.FrameSize)
		if st.Reconnects > 0 {
			fmt.Printf("wire: survived %d reconnects (%d warm resumes, +%d resume bytes)\n",
				st.Reconnects, st.ResumedWarm, st.ResumeBytes)
		}
	}
}
