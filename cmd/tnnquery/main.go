// Command tnnquery executes a single TNN query over a freshly built
// two-channel broadcast and reports the answer, the metrics, and — with
// -trace — the page-by-page download schedule on both channels. The trace
// makes the linear-medium behaviour of Figure 10 concrete: one can watch
// the client doze between scheduled arrivals and see which index pages each
// algorithm pays for.
//
// Usage:
//
//	tnnquery -algo double -s 10000 -r 10000 -x 19500 -y 19500
//	tnnquery -algo hybrid -s 2000 -r 30000 -trace
//	tnnquery -algo all -s 5000 -r 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"tnnbcast/internal/broadcast"
	"tnnbcast/internal/core"
	"tnnbcast/internal/dataset"
	"tnnbcast/internal/geom"
	"tnnbcast/internal/rtree"
)

var algos = map[string]func(core.Env, geom.Point, core.Options) core.Result{
	"window": core.WindowBased,
	"double": core.DoubleNN,
	"hybrid": core.HybridNN,
	"approx": core.ApproximateTNN,
}

func main() {
	var (
		algo    = flag.String("algo", "double", "window | double | hybrid | approx | all")
		sizeS   = flag.Int("s", 10000, "size of dataset S")
		sizeR   = flag.Int("r", 10000, "size of dataset R")
		x       = flag.Float64("x", 19500, "query point x")
		y       = flag.Float64("y", 19500, "query point y")
		seed    = flag.Int64("seed", 1, "random seed (datasets and channel phases)")
		pageCap = flag.Int("page", 64, "page capacity in bytes")
		ann     = flag.Float64("ann", 0, "ANN adjustment factor (0 = exact search)")
		trace   = flag.Bool("trace", false, "print the page-by-page download schedule")
	)
	flag.Parse()

	params := broadcast.DefaultParams()
	params.PageCap = *pageCap
	if err := params.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "tnnquery:", err)
		os.Exit(2)
	}

	region := dataset.PaperRegion
	ptsS := dataset.Uniform(*seed+1, *sizeS, region)
	ptsR := dataset.Uniform(*seed+2, *sizeR, region)
	rcfg := rtree.Config{LeafCap: params.LeafCap(), NodeCap: params.NodeCap()}
	treeS := rtree.Build(ptsS, rcfg)
	treeR := rtree.Build(ptsR, rcfg)
	progS := broadcast.BuildProgram(treeS, params)
	progR := broadcast.BuildProgram(treeR, params)

	fmt.Printf("channel S: %d points, %d index pages, %d data pages, (1,%d) interleave, cycle %d slots\n",
		treeS.Count, progS.NumIndexPages(), progS.NumDataPages(), progS.M(), progS.CycleLen())
	fmt.Printf("channel R: %d points, %d index pages, %d data pages, (1,%d) interleave, cycle %d slots\n",
		treeR.Count, progR.NumIndexPages(), progR.NumDataPages(), progR.M(), progR.CycleLen())

	env := core.Env{
		ChS:    broadcast.NewChannel(progS, *seed*7919%progS.CycleLen()),
		ChR:    broadcast.NewChannel(progR, *seed*104729%progR.CycleLen()),
		Region: region,
	}
	p := geom.Pt(*x, *y)

	oracle, oracleOK := core.OracleTNN(p, treeS, treeR)
	if oracleOK {
		fmt.Printf("exact TNN (oracle): s=%v r=%v dist=%.2f\n\n",
			oracle.S.Point, oracle.R.Point, oracle.Dist)
	}

	names := []string{*algo}
	if *algo == "all" {
		names = []string{"window", "double", "hybrid", "approx"}
	}
	for _, name := range names {
		run, ok := algos[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "tnnquery: unknown algorithm %q\n", name)
			os.Exit(2)
		}
		opt := core.Options{ANN: core.UniformANN(*ann)}
		if *trace {
			opt.Trace = func(ch string, slot int64, pg broadcast.Page) {
				switch pg.Kind {
				case broadcast.IndexPage:
					fmt.Printf("  [%s] slot %8d  index node %d\n", ch, slot, pg.NodeID)
				case broadcast.DataPage:
					fmt.Printf("  [%s] slot %8d  data object %d (fragment %d)\n",
						ch, slot, pg.ObjectID, pg.Seq)
				}
			}
			fmt.Printf("%s download schedule:\n", name)
		}
		res := run(env, p, opt)
		if !res.Found {
			fmt.Printf("%-8s NO ANSWER (search range missed the pair)\n", name)
			continue
		}
		status := "exact"
		if oracleOK && res.Pair.Dist > oracle.Dist*(1+1e-9) {
			status = fmt.Sprintf("SUBOPTIMAL (+%.1f%%)", 100*(res.Pair.Dist/oracle.Dist-1))
		}
		fmt.Printf("%-8s s=%v r=%v dist=%.2f [%s]\n", name, res.Pair.S.Point, res.Pair.R.Point, res.Pair.Dist, status)
		fmt.Printf("         access %d pages, tune-in %d pages (estimate %d + filter %d), radius %.2f",
			res.Metrics.AccessTime, res.Metrics.TuneIn, res.EstimateTuneIn, res.FilterTuneIn, res.Radius)
		if res.Case != core.CaseNone {
			fmt.Printf(", hybrid case %d", res.Case+1)
		}
		fmt.Println()
	}
}
