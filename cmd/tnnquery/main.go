// Command tnnquery executes a single TNN query over a freshly built
// two-channel broadcast and reports the answer, the metrics, and — with
// -trace — the page-by-page download schedule on both channels. The trace
// makes the linear-medium behaviour of Figure 10 concrete: one can watch
// the client doze between scheduled arrivals and see which index pages each
// algorithm pays for.
//
// tnnquery runs entirely on the public Query API v2: queries go through
// the unified request pipeline and the trace is the Cursor's typed event
// stream (PhaseStart / RadiusSet / PageDownloaded), not an internal hook.
// Any algorithm registered with tnnbcast.RegisterAlgorithm is selectable
// by name next to the built-ins.
//
// Usage:
//
//	tnnquery -algo double -s 10000 -r 10000 -x 19500 -y 19500
//	tnnquery -algo hybrid -s 2000 -r 30000 -trace
//	tnnquery -algo all -s 5000 -r 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"tnnbcast"
)

func main() {
	var (
		algo    = flag.String("algo", "double", "window | double | hybrid | approx | all, or a registered algorithm name")
		sizeS   = flag.Int("s", 10000, "size of dataset S")
		sizeR   = flag.Int("r", 10000, "size of dataset R")
		x       = flag.Float64("x", 19500, "query point x")
		y       = flag.Float64("y", 19500, "query point y")
		seed    = flag.Int64("seed", 1, "random seed (datasets and channel phases)")
		pageCap = flag.Int("page", 64, "page capacity in bytes")
		ann     = flag.Float64("ann", 0, "ANN adjustment factor (0 = exact search)")
		trace   = flag.Bool("trace", false, "print the page-by-page download schedule")
	)
	flag.Parse()

	region := tnnbcast.PaperRegion
	ptsS := tnnbcast.UniformDataset(*seed+1, *sizeS, region)
	ptsR := tnnbcast.UniformDataset(*seed+2, *sizeR, region)
	// WithPhases normalizes cyclically, so passing the raw products keeps
	// the pre-v2 offsets (seed*7919 mod cycleS, seed*104729 mod cycleR).
	sys, err := tnnbcast.New(ptsS, ptsR,
		tnnbcast.WithRegion(region),
		tnnbcast.WithPageCap(*pageCap),
		tnnbcast.WithPhases(*seed*7919, *seed*104729))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnnquery:", err)
		os.Exit(2)
	}

	statS, statR := sys.ChannelStats()
	for _, c := range []struct {
		name string
		st   tnnbcast.Stats
	}{{"S", statS}, {"R", statR}} {
		fmt.Printf("channel %s: %d points, %d index pages, %d data pages, (1,%d) interleave, cycle %d slots\n",
			c.name, c.st.Points, c.st.IndexPages, c.st.DataPages, c.st.Interleave, c.st.CycleLen)
	}

	p := tnnbcast.Pt(*x, *y)
	oracle, oracleOK := sys.Exact(p)
	if oracleOK {
		fmt.Printf("exact TNN (oracle): s=%v r=%v dist=%.2f\n\n", oracle.S, oracle.R, oracle.Dist)
	}

	var names []string
	if *algo == "all" {
		names = []string{"window", "double", "hybrid", "approx"}
	} else {
		names = []string{*algo}
	}
	for _, name := range names {
		a, ok := tnnbcast.AlgorithmByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "tnnquery: unknown algorithm %q (registered: %v)\n",
				name, tnnbcast.Algorithms())
			os.Exit(2)
		}
		var res tnnbcast.Result
		if *trace {
			fmt.Printf("%s download schedule:\n", name)
			cur, err := sys.Start(p, a, tnnbcast.WithANN(*ann))
			if err != nil {
				fmt.Fprintln(os.Stderr, "tnnquery:", err)
				os.Exit(2)
			}
			for ev := range cur.Events() {
				switch e := ev.(type) {
				case tnnbcast.PhaseStart:
					fmt.Printf("  --- %s phase (slot %d)\n", e.Phase, e.Slot)
				case tnnbcast.RadiusSet:
					fmt.Printf("  --- search radius %.2f (slot %d)\n", e.Radius, e.Slot)
				case tnnbcast.PageDownloaded:
					if e.Kind == tnnbcast.PageIndex {
						fmt.Printf("  [%s] slot %8d  index node %d\n", e.Channel, e.Slot, e.NodeID)
					} else {
						fmt.Printf("  [%s] slot %8d  data object %d (fragment %d)\n",
							e.Channel, e.Slot, e.ObjectID, e.Seq)
					}
				}
			}
			res = cur.Result()
		} else {
			res = sys.Query(p, a, tnnbcast.WithANN(*ann))
		}
		if !res.Found {
			fmt.Printf("%-8s NO ANSWER (search range missed the pair)\n", name)
			continue
		}
		status := "exact"
		if oracleOK && res.Dist > oracle.Dist*(1+1e-9) {
			status = fmt.Sprintf("SUBOPTIMAL (+%.1f%%)", 100*(res.Dist/oracle.Dist-1))
		}
		fmt.Printf("%-8s s=%v r=%v dist=%.2f [%s]\n", name, res.S, res.R, res.Dist, status)
		fmt.Printf("         access %d pages, tune-in %d pages (estimate %d + filter %d), radius %.2f",
			res.AccessTime, res.TuneIn, res.EstimateTuneIn, res.FilterTuneIn, res.Radius)
		if res.Case != tnnbcast.HybridCaseNone {
			fmt.Printf(", hybrid case %d", int(res.Case)+1)
		}
		fmt.Println()
	}
}
