// Command tnnlint is the repository's invariant multichecker: it runs
// the internal/analysis suite — detorder, nowallclock, noalloc,
// errtaxonomy, scratchescape — over the requested packages and exits
// nonzero on any finding. It is the compile-time face of the invariants
// the runtime tests (worker-invariance goldens, steady-state alloc
// benchmarks) verify after the fact.
//
// Usage:
//
//	go run ./cmd/tnnlint ./...
//	go run ./cmd/tnnlint ./internal/core ./internal/session
//	go run ./cmd/tnnlint -list
//
// Exit status: 0 clean, 1 findings, 2 load or usage failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tnnbcast/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		suite = filterSuite(suite, *only)
		if len(suite) == 0 {
			fmt.Fprintf(os.Stderr, "tnnlint: -only %q matches no analyzer\n", *only)
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fail(err)
	}
	dirs, err := loader.ExpandPatterns(flag.Args())
	if err != nil {
		fail(err)
	}

	findings := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fail(err)
		}
		diags, err := analysis.Run(pkg, suite)
		if err != nil {
			fail(err)
		}
		for _, d := range diags {
			findings++
			fmt.Println(relativize(loader.ModuleRoot, d))
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "tnnlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// filterSuite keeps the analyzers named in the comma-separated spec.
func filterSuite(suite []*analysis.Analyzer, spec string) []*analysis.Analyzer {
	keep := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		if name != "" {
			keep[name] = true
		}
	}
	var out []*analysis.Analyzer
	for _, a := range suite {
		if keep[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// relativize rewrites the diagnostic's filename relative to the module
// root for stable, clickable output.
func relativize(root string, d analysis.Diagnostic) analysis.Diagnostic {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && rel != "" && rel[0] != '.' {
		d.Pos.Filename = rel
	}
	return d
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tnnlint: %v\n", err)
	os.Exit(2)
}
