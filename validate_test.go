package tnnbcast_test

// Input-validation coverage: non-finite dataset points and regions are
// rejected with typed errors, phase offsets are cyclic and normalized, and
// empty datasets flow through every query path as Found == false rather
// than panicking.

import (
	"errors"
	"math"
	"testing"

	"tnnbcast"
)

func TestNewRejectsNonFinitePoints(t *testing.T) {
	good := []tnnbcast.Point{tnnbcast.Pt(1, 2), tnnbcast.Pt(3, 4), tnnbcast.Pt(5, 6)}
	cases := []struct {
		name string
		bad  tnnbcast.Point
	}{
		{"NaN-x", tnnbcast.Pt(math.NaN(), 1)},
		{"NaN-y", tnnbcast.Pt(1, math.NaN())},
		{"+Inf", tnnbcast.Pt(math.Inf(1), 1)},
		{"-Inf", tnnbcast.Pt(0, math.Inf(-1))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			withBad := append(append([]tnnbcast.Point{}, good...), c.bad)

			_, err := tnnbcast.New(withBad, good)
			var pe *tnnbcast.InvalidPointError
			if !errors.As(err, &pe) {
				t.Fatalf("New(S invalid): err = %v, want *InvalidPointError", err)
			}
			if pe.Dataset != "S" || pe.Index != 3 {
				t.Fatalf("error locates %s[%d], want S[3]", pe.Dataset, pe.Index)
			}

			_, err = tnnbcast.New(good, withBad)
			if !errors.As(err, &pe) {
				t.Fatalf("New(R invalid): err = %v, want *InvalidPointError", err)
			}
			if pe.Dataset != "R" || pe.Index != 3 {
				t.Fatalf("error locates %s[%d], want R[3]", pe.Dataset, pe.Index)
			}

			_, err = tnnbcast.NewChain([][]tnnbcast.Point{good, withBad})
			if !errors.As(err, &pe) {
				t.Fatalf("NewChain: err = %v, want *InvalidPointError", err)
			}
			if pe.Dataset != "datasets[1]" || pe.Index != 3 {
				t.Fatalf("error locates %s[%d], want datasets[1][3]", pe.Dataset, pe.Index)
			}
		})
	}
}

func TestNewRejectsBadRegion(t *testing.T) {
	good := []tnnbcast.Point{tnnbcast.Pt(1, 2), tnnbcast.Pt(3, 4)}
	for _, bad := range []tnnbcast.Rect{
		tnnbcast.RectOf(tnnbcast.Pt(0, 0), tnnbcast.Pt(math.Inf(1), 10)), // non-finite
		{Lo: tnnbcast.Pt(10, 0), Hi: tnnbcast.Pt(0, 10)},                 // inverted x
		{Lo: tnnbcast.Pt(0, 10), Hi: tnnbcast.Pt(10, 0)},                 // inverted y
	} {
		_, err := tnnbcast.New(good, good, tnnbcast.WithRegion(bad))
		var re *tnnbcast.InvalidRegionError
		if !errors.As(err, &re) {
			t.Fatalf("WithRegion(%v): err = %v, want *InvalidRegionError", bad, err)
		}
	}
}

// TestPhaseNormalization: phase offsets are cyclic, so negative and
// beyond-cycle offsets must configure the identical broadcast — same
// normalized Phases, same Results — as their canonical equivalents.
func TestPhaseNormalization(t *testing.T) {
	region := tnnbcast.PaperRegion
	s := tnnbcast.UniformDataset(3001, 500, region)
	r := tnnbcast.UniformDataset(3002, 400, region)

	base, err := tnnbcast.New(s, r, tnnbcast.WithRegion(region), tnnbcast.WithPhases(100, 200))
	if err != nil {
		t.Fatal(err)
	}
	offS, offR := base.Phases()
	if offS != 100 || offR != 200 {
		t.Fatalf("Phases() = (%d, %d), want (100, 200)", offS, offR)
	}
	stS, stR := base.ChannelStats()
	cycS, cycR := stS.CycleLen, stR.CycleLen

	equivalents := []struct{ offS, offR int64 }{
		{100 - cycS, 200 - cycR},         // negative
		{100 + cycS, 200 + cycR},         // one cycle beyond
		{100 - 3*cycS, 200 + 7*cycR},     // far out on both sides
		{100 + cycS*1000, 200 - cycR*42}, // very far out
	}
	q := tnnbcast.Pt(19500, 19500)
	want := base.Query(q, tnnbcast.Hybrid)
	for _, e := range equivalents {
		sys, err := tnnbcast.New(s, r, tnnbcast.WithRegion(region), tnnbcast.WithPhases(e.offS, e.offR))
		if err != nil {
			t.Fatal(err)
		}
		gS, gR := sys.Phases()
		if gS != 100 || gR != 200 {
			t.Fatalf("WithPhases(%d, %d): Phases() = (%d, %d), want (100, 200)",
				e.offS, e.offR, gS, gR)
		}
		if got := sys.Query(q, tnnbcast.Hybrid); got != want {
			t.Fatalf("WithPhases(%d, %d) changed the query outcome", e.offS, e.offR)
		}
	}
}

// TestEmptyDatasetQueries: empty datasets are legal; every algorithm and
// the batch engine complete with Found == false and zero-or-sane metrics
// instead of panicking.
func TestEmptyDatasetQueries(t *testing.T) {
	algos := []tnnbcast.Algorithm{
		tnnbcast.Window, tnnbcast.Double, tnnbcast.Hybrid, tnnbcast.Approximate,
	}
	some := tnnbcast.UniformDataset(3003, 300, tnnbcast.PaperRegion)

	cases := []struct {
		name string
		s, r []tnnbcast.Point
	}{
		{"both-empty", nil, nil},
		{"S-empty", nil, some},
		{"R-empty", some, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys, err := tnnbcast.New(c.s, c.r, tnnbcast.WithPhases(-7, 1e6))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			for _, a := range algos {
				res := sys.Query(tnnbcast.Pt(100, 100), a, tnnbcast.WithIssue(33))
				if res.Found {
					t.Fatalf("%v: Found on empty dataset: %+v", a, res)
				}
			}
			if _, ok := sys.Exact(tnnbcast.Pt(1, 1)); ok {
				t.Fatal("Exact reported an answer on empty data")
			}
			var queries []tnnbcast.ClientQuery
			for _, a := range algos {
				queries = append(queries, tnnbcast.ClientQuery{Point: tnnbcast.Pt(5, 5), Algo: a})
			}
			for _, res := range sys.QueryBatch(queries) {
				if res.Found {
					t.Fatalf("batch Found on empty dataset: %+v", res)
				}
			}
		})
	}
}
