package tnnbcast

// The v2 unified request pipeline. Every public query entry point —
// Query, QueryUnordered, QueryRoundTrip, QueryTopK, the streaming Start,
// and (via the same validation and option application) Session.Add — is a
// thin wrapper over one Request→Do path that centralizes algorithm
// validation, option application, and scratch checkout. The wrappers
// produce bit-identical metrics to their pre-v2 selves; Do additionally
// surfaces typed errors the legacy signatures could only panic with.

import (
	"fmt"

	"tnnbcast/internal/core"
)

// Variant selects the query type of a Request.
type Variant int

const (
	// Transitive is the paper's TNN query: one object from S, then one
	// from R, minimizing dis(p,s) + dis(s,r). The only variant with a
	// selectable Algorithm; the others use the generalized Double-NN
	// (parallel estimate) strategy.
	Transitive Variant = iota
	// Unordered visits one object from each dataset in whichever
	// order is shorter.
	Unordered
	// RoundTrip minimizes the full tour
	// dis(p,s) + dis(s,r) + dis(r,p).
	RoundTrip
	// TopK returns the K best (s, r) pairs in ascending
	// transitive-distance order.
	TopK
)

func (v Variant) String() string {
	switch v {
	case Transitive:
		return "transitive"
	case Unordered:
		return "unordered"
	case RoundTrip:
		return "roundtrip"
	case TopK:
		return "topk"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Request describes one TNN query in the v2 API.
type Request struct {
	// Point is the query point.
	Point Point
	// Algo selects the processing algorithm (Transitive variant only) —
	// a built-in or any Algorithm returned by RegisterAlgorithm.
	Algo Algorithm
	// Variant selects the query type; the zero value is Transitive.
	Variant Variant
	// K is the result count for TopK (ignored otherwise).
	K int
	// Options are the per-query options (WithIssue, WithANN, …).
	Options []QueryOption
}

// Metrics are the paper's two performance measures for one query, in
// pages.
type Metrics struct {
	// AccessTime is the elapsed broadcast slots from query issue until
	// the answer is complete, maximized over the channels.
	AccessTime int64
	// TuneIn is the number of pages downloaded across all channels — the
	// energy-consumption proxy.
	TuneIn int64
	// Lost, Retries, and RecoverySlots account for faulted receptions
	// under WithFaults; see the same fields on Result.
	Lost, Retries, RecoverySlots int64
}

// AnswerPair is one (s, r) pair of a top-k answer.
type AnswerPair struct {
	// S and R are the pair's locations; SID and RID index into the
	// original dataset slices.
	S, R     Point
	SID, RID int
	// Dist is the transitive distance dis(p,s) + dis(s,r).
	Dist float64
}

// TopKResult is the v2 shape of a top-k TNN answer: the ranked pairs plus
// ONE set of whole-query metrics — the query downloads its pages once, so
// the metrics belong to the query, not to each pair. (The legacy
// QueryTopK flattens this by copying the metrics into every returned
// Result.)
type TopKResult struct {
	// Pairs are the K best pairs in ascending transitive-distance order
	// (fewer when the datasets are smaller than K).
	Pairs []AnswerPair
	// Found is false when no pair was found (empty datasets).
	Found bool
	// Metrics are the whole-query access and tune-in times.
	Metrics Metrics
	// Radius is the search-range radius of the k-NN estimate phase.
	Radius float64
	// Err is non-nil when the query gave up on a dead channel; see
	// Result.Err.
	Err error
}

// Response is the outcome of one Do call.
type Response struct {
	// Result is the answer for the Transitive, Unordered, and
	// RoundTrip queries.
	Result Result
	// SFirst reports, for Unordered, whether the S-dataset object
	// is visited first on the best route.
	SFirst bool
	// TopK is the TopK answer.
	TopK TopKResult
}

// applyOptions folds the functional options into the internal options
// struct — the single place every entry point builds its core.Options.
func applyOptions(opts []QueryOption) core.Options {
	var o core.Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Do executes one Request over the broadcast and returns its Response.
// It is the unified pipeline behind every query entry point: an
// unregistered Algorithm yields an *UnknownAlgorithmError, an undefined
// Variant or a TopK K < 1 an error, and the per-variant engines
// run with a pooled scratch. Do is safe for concurrent use.
func (sys *System) Do(req Request) (Response, error) {
	if req.Variant == Transitive && !validAlgorithm(req.Algo) {
		return Response{}, &UnknownAlgorithmError{Algo: req.Algo}
	}
	if req.Variant == TopK && req.K < 1 {
		return Response{}, &InvalidTopKError{K: req.K}
	}
	o := applyOptions(req.Options)
	sc := scratchPool.Get().(*core.Scratch)
	defer scratchPool.Put(sc)
	o.Scratch = sc

	switch req.Variant {
	case Transitive:
		res, ok := core.Run(sys.env, core.Algo(req.Algo), req.Point, o)
		if !ok {
			// The algorithm was unregistered between validation and
			// dispatch — impossible today (the registry only grows), kept
			// as a loud guard.
			return Response{}, &UnknownAlgorithmError{Algo: req.Algo}
		}
		return Response{Result: fromCore(res)}, nil
	case Unordered:
		res, first := core.UnorderedTNN(sys.env, req.Point, o)
		return Response{Result: fromCore(res), SFirst: first}, nil
	case RoundTrip:
		return Response{Result: fromCore(core.RoundTripTNN(sys.env, req.Point, o))}, nil
	case TopK:
		return Response{TopK: fromCoreTopK(core.TopKTNN(sys.env, req.Point, req.K, o))}, nil
	default:
		return Response{}, &UnknownVariantError{Variant: req.Variant}
	}
}

// fromCoreTopK converts an internal top-k result to the v2 shape.
func fromCoreTopK(res core.TopKResult) TopKResult {
	out := TopKResult{
		Found: res.Found,
		Metrics: Metrics{
			AccessTime:    res.Metrics.AccessTime,
			TuneIn:        res.Metrics.TuneIn,
			Lost:          res.Metrics.Lost,
			Retries:       res.Metrics.Retries,
			RecoverySlots: res.Metrics.RecoverySlots,
		},
		Radius: res.Radius,
		Err:    publicErr(res.Err),
	}
	if len(res.Pairs) > 0 {
		out.Pairs = make([]AnswerPair, len(res.Pairs))
		for i, pr := range res.Pairs {
			out.Pairs[i] = AnswerPair{
				S: pr.S.Point, R: pr.R.Point,
				SID: pr.S.ID, RID: pr.R.ID,
				Dist: pr.Dist,
			}
		}
	}
	return out
}
