package tnnbcast

// Shared-cycle multi-client sessions. A broadcast's defining property is
// that one transmission serves arbitrarily many listeners; Session and
// QueryBatch put that property in the API. All clients of one session run
// against the SAME broadcast cycles — the System's channels with their
// configured phases — each with its own query point, algorithm, issue
// slot, and options, advanced together in global slot order by
// internal/session's event loop.
//
// Determinism guarantees:
//
//   - Per-client Results are bit-identical to calling System.Query once
//     per client with the same arguments, regardless of batch size, batch
//     composition, or worker count (clients share only the immutable
//     broadcast, so they cannot perturb each other).
//   - With WithBatchWorkers(1) the slot-level interleaving is
//     deterministic as well: one global event loop, equal-slot ties
//     resolved by client admission index. With more workers, clients are
//     sharded round-robin and each shard's loop is internally
//     deterministic, but the shards execute concurrently — Results are
//     unaffected, only the cross-shard step order varies.
//
// When batch beats sequential: in broadcast time, always — N overlapped
// clients complete within roughly one access-time span instead of N of
// them, which is the paper's million-user scaling argument. In wall-clock
// simulation time, QueryBatch additionally fans clients across CPUs
// (WithBatchWorkers), whereas sequential Query calls serialize.

import (
	"errors"
	"runtime"

	"tnnbcast/internal/core"
	"tnnbcast/internal/session"
)

// ClientQuery describes one client's query within a batch.
type ClientQuery struct {
	// Point is the client's location (the TNN query point).
	Point Point
	// Algo selects the processing algorithm for this client.
	Algo Algorithm
	// Opts are the client's per-query options (WithIssue, WithANN, …).
	Opts []QueryOption
}

// BatchOption configures a Session or QueryBatch call.
type BatchOption func(*batchConfig)

type batchConfig struct {
	workers int
}

// WithBatchWorkers sets how many goroutines the session fans its clients
// across: any n <= 0 selects GOMAXPROCS (the default), and 1 forces the
// strictly sequential global event loop. Per-client Results are identical
// for every value.
func WithBatchWorkers(n int) BatchOption {
	return func(c *batchConfig) { c.workers = n }
}

// Session is an open shared-cycle multi-client session: admit any number
// of clients with Add, then execute them concurrently against the
// System's broadcast with Run. A Session is not safe for concurrent use;
// run one per goroutine (they may share the System).
type Session struct {
	sys     *System
	workers int
	queries []session.Query
}

// NewSession opens a session over the system's broadcast.
func (sys *System) NewSession(opts ...BatchOption) *Session {
	cfg := batchConfig{workers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&cfg)
	}
	return &Session{sys: sys, workers: cfg.workers}
}

// Add admits one client and returns its index — the position of its
// Result in the slice Run returns, and its tie-break rank in the slot-
// ordered event loop. It validates like Do: an unregistered Algorithm
// panics with *UnknownAlgorithmError, and a negative issue slot (sessions
// share one timeline starting at slot 0) panics with *InvalidIssueError
// (Add's legacy signature has no error result).
func (s *Session) Add(p Point, algo Algorithm, opts ...QueryOption) int {
	if !validAlgorithm(algo) {
		panic(&UnknownAlgorithmError{Algo: algo})
	}
	opt := applyOptions(opts)
	if opt.Issue < 0 {
		panic(&InvalidIssueError{Client: len(s.queries), Issue: opt.Issue})
	}
	// The public Algorithm values and the internal core.Algo ids are the
	// same registry: built-ins by construction, registered strategies
	// because RegisterAlgorithm returns the core id.
	s.queries = append(s.queries, session.Query{Point: p, Algo: core.Algo(algo), Opt: opt})
	return len(s.queries) - 1
}

// Len returns the number of admitted clients not yet run.
func (s *Session) Len() int { return len(s.queries) }

// Run executes every admitted client to completion against the shared
// cycles and returns their Results in admission order. The admitted set is
// cleared; the session can be reused for a new batch.
func (s *Session) Run() []Result {
	queries := s.queries
	s.queries = nil
	eng := session.New(s.sys.env, s.workers)
	results, err := eng.Run(queries)
	if err != nil {
		// Unreachable: Add validated every issue slot. Matches Add's
		// panic-on-invalid contract if a future check lands engine-side,
		// translated to the public error type callers can recover on.
		var iss *session.InvalidIssueError
		if errors.As(err, &iss) {
			panic(&InvalidIssueError{Client: iss.Client, Issue: iss.Issue})
		}
		panic(err)
	}
	out := make([]Result, len(queries))
	for i, res := range results {
		out[i] = fromCore(res)
	}
	return out
}

// QueryBatch answers many clients' TNN queries as one shared-cycle
// session and returns their Results in input order. It is equivalent to —
// and bit-identical with — calling Query once per client, but all clients
// overlap on the same broadcast cycles and the simulation parallelizes
// across workers.
func (sys *System) QueryBatch(queries []ClientQuery, opts ...BatchOption) []Result {
	s := sys.NewSession(opts...)
	for _, q := range queries {
		s.Add(q.Point, q.Algo, q.Opts...)
	}
	return s.Run()
}
