package tnnbcast_test

import (
	"math"
	"testing"

	"tnnbcast"
)

func TestChainSystem(t *testing.T) {
	region := tnnbcast.RectOf(tnnbcast.Pt(0, 0), tnnbcast.Pt(1000, 1000))
	datasets := [][]tnnbcast.Point{
		tnnbcast.UniformDataset(1, 200, region),
		tnnbcast.UniformDataset(2, 150, region),
		tnnbcast.ClusteredDataset(3, 180, 4, region),
	}
	cs, err := tnnbcast.NewChain(datasets, tnnbcast.WithRegion(region), tnnbcast.WithPhases(19, 73))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []tnnbcast.Point{
		tnnbcast.Pt(500, 500), tnnbcast.Pt(50, 950), tnnbcast.Pt(812, 133),
	} {
		got := cs.Query(q)
		if !got.Found || len(got.Stops) != 3 {
			t.Fatalf("chain query failed: %+v", got)
		}
		want, ok := cs.Exact(q)
		if !ok {
			t.Fatal("chain oracle failed")
		}
		if math.Abs(got.Dist-want.Dist) > 1e-9*(1+want.Dist) {
			t.Fatalf("chain dist %v, oracle %v", got.Dist, want.Dist)
		}
		if got.TuneIn <= 0 || got.AccessTime <= 0 {
			t.Fatalf("bad metrics: %+v", got)
		}
		// Stop IDs reference the right datasets.
		for i, id := range got.StopIDs {
			if datasets[i][id] != got.Stops[i] {
				t.Fatalf("stop %d: ID %d does not match point", i, id)
			}
		}
	}
}

func TestChainSystemInvalidParams(t *testing.T) {
	if _, err := tnnbcast.NewChain(nil, tnnbcast.WithPageCap(5)); err == nil {
		t.Error("expected error for tiny pages")
	}
}

func TestQueryUnordered(t *testing.T) {
	sys := buildSystem(t)
	for _, q := range []tnnbcast.Point{tnnbcast.Pt(300, 300), tnnbcast.Pt(900, 100)} {
		res, _ := sys.QueryUnordered(q)
		if !res.Found {
			t.Fatal("unordered not found")
		}
		// Never worse than the ordered query.
		ordered := sys.Query(q, tnnbcast.Double)
		if res.Dist > ordered.Dist+1e-9 {
			t.Fatalf("unordered %v worse than ordered %v", res.Dist, ordered.Dist)
		}
	}
}

func TestQueryRoundTrip(t *testing.T) {
	sys := buildSystem(t)
	q := tnnbcast.Pt(444, 555)
	res := sys.QueryRoundTrip(q)
	if !res.Found {
		t.Fatal("round trip not found")
	}
	// The tour is at least the one-way trip plus the return leg's minimum.
	oneWay := sys.Query(q, tnnbcast.Double)
	if res.Dist < oneWay.Dist-1e-9 {
		t.Fatalf("round trip %v below one-way %v", res.Dist, oneWay.Dist)
	}
	// The reported distance matches its own stops.
	want := dist(q, res.S) + dist(res.S, res.R) + dist(res.R, q)
	if math.Abs(res.Dist-want) > 1e-9 {
		t.Fatalf("tour dist %v but stops give %v", res.Dist, want)
	}
}

func dist(a, b tnnbcast.Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

func TestQueryTopK(t *testing.T) {
	sys := buildSystem(t)
	q := tnnbcast.Pt(512, 480)
	top, ok := sys.QueryTopK(q, 5)
	if !ok || len(top) != 5 {
		t.Fatalf("top-k failed: ok=%v len=%d", ok, len(top))
	}
	best, _ := sys.Exact(q)
	if math.Abs(top[0].Dist-best.Dist) > 1e-9 {
		t.Fatalf("top-1 %v, oracle %v", top[0].Dist, best.Dist)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Dist < top[i-1].Dist {
			t.Fatal("top-k not sorted")
		}
	}
	if _, ok := sys.QueryTopK(q, 0); ok {
		t.Error("k=0 should fail")
	}
}
